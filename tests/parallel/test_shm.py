"""Shared-memory transport lifecycle: no orphans, identical fallback.

The hard guarantees under test (ISSUE 7 acceptance criteria):

* pool shutdown, worker crash, and KeyboardInterrupt all leave zero
  orphaned ``/dev/shm`` segments with our :data:`SEGMENT_PREFIX`;
* the pickling fallback produces byte-identical blobs to the
  shared-memory path.
"""

import glob
import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.api import get_codec
from repro.parallel import shm
from repro.parallel.pool import CodecWorkerPool, shared_pool, shutdown_shared_pools

pytestmark = pytest.mark.skipif(
    not shm.shm_available(), reason="no POSIX shared memory on this platform"
)

DIMS = (2, 2, 2, 2)
EB = 1e-10


def _segment_names() -> set[str]:
    return set(glob.glob(f"/dev/shm/{shm.SEGMENT_PREFIX}*"))


_BASELINE: set[str] = set()


def _dev_shm_orphans() -> list[str]:
    """Segments beyond the pre-test baseline (other processes — e.g. a
    concurrently running test session — may own live segments legitimately)."""
    return sorted(_segment_names() - _BASELINE)


@pytest.fixture(autouse=True)
def _clean_slate():
    global _BASELINE
    # earlier suite tests legitimately hold warm persistent pools (that's
    # the point of shared_pool); start each test from an empty ledger
    shutdown_shared_pools()
    shm.detach_all()
    assert shm.active_segments() == []
    _BASELINE = _segment_names()
    yield
    shutdown_shared_pools()
    assert shm.active_segments() == []
    assert not _dev_shm_orphans()


def _stream(n_blocks: int = 50, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    codec = get_codec("pastri", dims=DIMS)
    n = codec.spec.block_size * n_blocks
    return rng.normal(scale=1e-4, size=n) * np.exp(rng.normal(size=n))


class TestSegmentPool:
    def test_lease_roundtrip_and_reuse(self):
        pool = shm.ShmSegmentPool()
        data = np.arange(1000, dtype=np.float64)
        lease = pool.acquire(data.nbytes)
        ref = lease.put_array(data)
        np.testing.assert_array_equal(shm.attach_array(ref), data)
        name = lease.name
        lease.release()
        # same size class -> the very same warm segment comes back
        lease2 = pool.acquire(data.nbytes)
        assert lease2.name == name
        lease2.release()
        shm.detach_all()
        assert pool.close() == []
        assert shm.active_segments() == []

    def test_close_reports_stray_leases(self):
        pool = shm.ShmSegmentPool()
        lease = pool.acquire(1024)
        stray = pool.close()
        assert stray == [lease.name]
        assert not _dev_shm_orphans()  # reported AND unlinked

    def test_bytes_ref_roundtrip(self):
        pool = shm.ShmSegmentPool()
        blob = os.urandom(5000)
        lease = pool.acquire(len(blob))
        ref = lease.put_bytes(blob)
        assert bytes(shm.attach_bytes(ref)) == blob
        lease.release()
        shm.detach_all()
        pool.close()

    def test_overflow_rejected(self):
        pool = shm.ShmSegmentPool()
        lease = pool.acquire(64)
        with pytest.raises(Exception):
            lease.put_bytes(b"x" * (lease.capacity + 1))
        lease.release()
        pool.close()


class TestPoolLifecycle:
    def test_clean_shutdown_leaves_no_segments(self):
        pool = CodecWorkerPool("pastri", {"dims": list(DIMS)}, n_workers=2)
        data = _stream()
        blobs = pool.compress_batch([(data, EB, None)] * 3)
        arrays = pool.decompress_batch(blobs)
        for arr in arrays:
            assert np.max(np.abs(arr - data)) <= EB
        pool.close()
        assert shm.active_segments() == []
        assert not _dev_shm_orphans()

    def test_worker_crash_leaves_no_segments(self):
        pool = CodecWorkerPool("pastri", {"dims": list(DIMS)}, n_workers=2)
        if not pool.uses_shm:
            pool.close()
            pytest.skip("shm transport unavailable")
        # a corrupt blob makes the worker task raise; Pool.map re-raises here
        with pytest.raises(Exception):
            pool.decompress_batch([b"\x00" * 100])
        # the lease must have been released on the error path
        assert pool._shm.leaked == []
        pool.terminate()
        assert shm.active_segments() == []
        assert not _dev_shm_orphans()

    def test_fallback_blobs_byte_identical(self):
        data = _stream()
        jobs = [(data, EB, None), (data * 0.5, EB, list(DIMS))]
        with CodecWorkerPool("pastri", {"dims": list(DIMS)}, 2, use_shm=True) as p:
            via_shm = p.compress_batch(jobs)
            assert p.uses_shm
        with CodecWorkerPool("pastri", {"dims": list(DIMS)}, 2, use_shm=False) as p:
            via_pickle = p.compress_batch(jobs)
            assert not p.uses_shm
        assert via_shm == via_pickle
        # and both match the in-process codec exactly
        codec = get_codec("pastri", dims=DIMS)
        assert via_shm[0] == codec.compress(data, EB)

    def test_decompress_fallback_identical(self):
        data = _stream(seed=7)
        codec = get_codec("pastri", dims=DIMS)
        blobs = [codec.compress(data, EB)]
        with CodecWorkerPool("pastri", {"dims": list(DIMS)}, 2, use_shm=False) as p:
            out = p.decompress_batch(blobs)[0]
        np.testing.assert_array_equal(out, codec.decompress(blobs[0]))

    def test_shared_pool_is_persistent(self):
        p1 = shared_pool("pastri", {"dims": list(DIMS)}, 2)
        p2 = shared_pool("pastri", {"dims": list(DIMS)}, 2)
        assert p1 is p2
        p3 = shared_pool("pastri", {"dims": list(DIMS)}, 3)
        assert p3 is not p1
        shutdown_shared_pools()
        p4 = shared_pool("pastri", {"dims": list(DIMS)}, 2)
        assert p4 is not p1  # closed pools are replaced, not resurrected


class TestInterrupt:
    def test_keyboard_interrupt_leaves_no_segments(self, tmp_path):
        """SIGINT mid-batch: the atexit sweep still clears every segment."""
        script = textwrap.dedent(
            f"""
            import os, signal, threading
            import numpy as np
            from repro.api import get_codec
            from repro.parallel.pool import CodecWorkerPool

            codec = get_codec("pastri", dims={DIMS!r})
            data = np.random.default_rng(0).normal(
                scale=1e-4, size=codec.spec.block_size * 400)
            pool = CodecWorkerPool("pastri", {{"dims": list({DIMS!r})}}, 2)
            # raise KeyboardInterrupt in the main thread mid-batch
            threading.Timer(0.05, os.kill, (os.getpid(), signal.SIGINT)).start()
            try:
                for _ in range(100):
                    pool.compress_batch([(data, {EB}, None)] * 4)
            except KeyboardInterrupt:
                pass
            """
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", script], env=env, timeout=120,
            capture_output=True, text=True,
        )
        assert "Traceback" not in proc.stderr, proc.stderr
        assert not _dev_shm_orphans()


class TestSharedOutput:
    def test_scatter_and_finish(self):
        out = shm.SharedOutput(10)
        a = shm.attach_array(out.ref(0, 4))
        b = shm.attach_array(out.ref(4, 6))
        a[:] = np.arange(4)
        b[:] = np.arange(6) + 100.0
        result = out.finish()
        np.testing.assert_array_equal(result[:4], np.arange(4.0))
        np.testing.assert_array_equal(result[4:], np.arange(6.0) + 100.0)
        shm.detach_all()
        del a, b, result
        assert shm.active_segments() == []
        assert not _dev_shm_orphans()

    def test_abort_unlinks(self):
        out = shm.SharedOutput(100)
        out.abort()
        assert shm.active_segments() == []
        assert not _dev_shm_orphans()


class TestShipAdopt:
    def test_ownership_transfer(self):
        data = np.random.default_rng(1).normal(size=100_000)  # > SHIP_MIN_BYTES
        ref = shm.ship_array(data)
        arr = shm.adopt_array(ref)
        np.testing.assert_array_equal(arr, data)
        # adopt unlinked immediately: nothing on disk even while arr lives
        assert not _dev_shm_orphans()
        del arr
