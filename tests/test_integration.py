"""End-to-end integration tests: the full paper workflow in one place.

Chains the substrates the way a user (or the paper's evaluation) would:
integral engine → dataset → codecs → metrics → store → solver → container.
"""

import io

import numpy as np
import pytest

from repro import (
    CompressedERIStore,
    PaSTRICompressor,
    SZCompressor,
    ZFPCompressor,
    assert_error_bound,
    compression_ratio,
    generate_dataset,
    get_codec,
    glutamine,
    psnr,
)
from repro.chem import RHFSolver, class_dump, compress_class_dump, sto3g_basis, water
from repro.chem.synthetic import SyntheticERIModel
from repro.metrics import assess
from repro.streamio import compress_stream, decompress_stream, read_stream_header

EB = 1e-10


@pytest.fixture(scope="module")
def real_dataset():
    return generate_dataset(glutamine(), "(dd|dd)", n_blocks=60, seed=9)


def test_engine_to_codec_to_metrics(real_dataset):
    """The headline path: real ERIs through all three lossy codecs."""
    ratios = {}
    for name in ("pastri", "sz", "zfp"):
        kwargs = {"dims": real_dataset.spec.dims} if name == "pastri" else {}
        codec = get_codec(name, **kwargs)
        blob = codec.compress(real_dataset.data, EB)
        dec = codec.decompress(blob)
        assert_error_bound(real_dataset.data, dec, EB)
        assert psnr(real_dataset.data, dec) > 100
        ratios[name] = compression_ratio(real_dataset.nbytes, len(blob))
    assert ratios["pastri"] > ratios["sz"]
    assert ratios["pastri"] > ratios["zfp"]


def test_assessment_battery_on_real_data(real_dataset):
    a = assess(PaSTRICompressor(dims=real_dataset.spec.dims), real_dataset.data, EB)
    assert a.bound_satisfied
    assert a.pearson_correlation > 1 - 1e-9
    assert abs(a.error_mean) < a.error_std


def test_synthetic_matches_real_statistics(real_dataset):
    """The synthetic generator must land in the real data's ratio regime."""
    synth = SyntheticERIModel.from_config("(dd|dd)", seed=11).generate(60)
    codec = PaSTRICompressor(dims=(6, 6, 6, 6))
    r_real = compression_ratio(
        real_dataset.nbytes, len(codec.compress(real_dataset.data, EB))
    )
    r_synth = compression_ratio(synth.nbytes, len(codec.compress(synth.data, EB)))
    assert 0.3 * r_real < r_synth < 4.0 * r_real


def test_store_roundtrip_through_container(real_dataset, tmp_path):
    """Dataset -> chunked container file -> identical reconstruction."""
    codec = PaSTRICompressor(dims=real_dataset.spec.dims)
    chunks = np.array_split(real_dataset.data, 4)
    buf = io.BytesIO()
    summary = compress_stream(chunks, codec, EB, buf)
    assert summary.ratio > 3
    buf.seek(0)
    assert read_stream_header(buf) == "pastri"
    out = np.concatenate(list(decompress_stream(buf, codec)))
    assert_error_bound(real_dataset.data, out, EB)


def test_scf_on_compressed_class_dump():
    """The complete application: HF energy from PaSTRI-stored integrals."""
    basis = sto3g_basis(water())
    direct = RHFSolver(basis).run()
    store = CompressedERIStore(PaSTRICompressor(dims=(1, 1, 1, 1)), error_bound=EB)
    stored = RHFSolver(basis, store=store).run()
    assert stored.converged
    assert abs(stored.energy - direct.energy) < 1e-7
    assert store.stats.n_entries > 0
    assert store.stats.ratio > 0.5  # tiny near-unit blocks barely compress


def test_class_dump_pipeline():
    dump = class_dump(sto3g_basis(water()), max_blocks_per_class=10)
    res = compress_class_dump(dump, EB)
    assert res.max_abs_error <= EB
    # labels partition the quartets: no block counted twice
    total = sum(s["blocks"] for s in res.per_class.values())
    assert total == sum(ds.n_blocks for ds in dump.values())


def test_cross_codec_streams_are_rejected(real_dataset):
    """A blob from one codec must not decode as another."""
    from repro.errors import ReproError

    pastri_blob = PaSTRICompressor(dims=real_dataset.spec.dims).compress(
        real_dataset.data[:1296], EB
    )
    for other in (SZCompressor(), ZFPCompressor()):
        with pytest.raises(ReproError):
            other.decompress(pastri_blob)
