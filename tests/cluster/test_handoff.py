"""Hinted-handoff kill-point matrix (PR 8).

The same discipline as ``tests/faults/test_crash_matrix.py``, one level
up the stack: instead of placing a byte-budget failpoint inside one
container's write stream, these tests hard-kill a whole shard at chosen
points in a write workload (:meth:`LocalFleet.kill` aborts the server
without footering its spill container — the disk state a SIGKILL
leaves) and assert the cluster-level contract at every point:

* writes issued while a preferred replica is dead land on a live holder
  and leave a hint;
* reads **never** fail client-side — they fail over to a live replica;
* when the dead shard rejoins (salvaging its own spill through the PR 5
  recovery path), the gateway drains the hints back and the rejoined
  shard serves the hinted keys **byte-identically** to the holder's
  copy;
* a restarted gateway replays its hint journal and still owes exactly
  the open hints.
"""

import time

import numpy as np
import pytest

from repro import telemetry
from repro.cluster import HintLog, LocalFleet

EB = 1e-10
SHAPE = (4, 4, 4, 4)


@pytest.fixture(autouse=True)
def _clean_telemetry():
    yield
    telemetry.disable()
    telemetry.reset()


def _fleet(tmp_path, **gateway_kwargs):
    kwargs = {"health_interval_s": 0.1, "fail_after": 1}
    kwargs.update(gateway_kwargs)
    return LocalFleet(
        3, str(tmp_path), replication=2,
        server_kwargs={"memory_budget_bytes": 4096},
        gateway_kwargs=kwargs,
    )


def _block(seed):
    return np.random.default_rng(seed).normal(size=SHAPE)


def _wait(predicate, timeout_s=15.0, interval_s=0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return False


def _wait_recovered(client):
    def ok():
        h = client.health()
        return not h["shards_down"] and h["hints_pending"] == 0

    assert _wait(ok), client.health()


class TestKillPointMatrix:
    """Kill one shard after K of 18 writes; the contract holds at every K."""

    @pytest.mark.parametrize("kill_after", [0, 1, 9, 17])
    def test_write_read_rejoin_at_every_kill_point(self, tmp_path, kill_after):
        fleet = _fleet(tmp_path)
        blocks = {("blk", i): _block(i) for i in range(18)}
        keys = list(blocks)
        with fleet:
            with fleet.client() as c:
                for key in keys[:kill_after]:
                    c.put(key, blocks[key])
                fleet.kill("shard-01")
                for key in keys[kill_after:]:
                    c.put(key, blocks[key])  # no client-visible failure
                for key in keys:  # reads fail over, never error
                    out = c.get(key).reshape(SHAPE)
                    assert np.max(np.abs(out - blocks[key])) <= EB
                fleet.restart("shard-01")
                _wait_recovered(c)
                for key in keys:
                    out = c.get(key).reshape(SHAPE)
                    assert np.max(np.abs(out - blocks[key])) <= EB

    def test_drained_shard_serves_hinted_keys_byte_identically(self, tmp_path):
        fleet = _fleet(tmp_path)
        with fleet:
            gw = fleet.gateway.gateway
            with fleet.client() as c:
                fleet.kill("shard-02")
                blocks = {("blk", i): _block(i) for i in range(10)}
                for key, data in blocks.items():
                    c.put(key, data)
                hinted = list(gw.hints.pending("shard-02"))
                assert hinted, "no write preferred the killed shard"
                holder_blobs = {}
                for key, holder in hinted:
                    with fleet.shard_client(holder) as hc:
                        _, blob = hc.call("store.get_raw", {"key": key})
                    holder_blobs[tuple(key)] = blob
                fleet.restart("shard-02")
                _wait_recovered(c)
            for key, blob in holder_blobs.items():
                with fleet.shard_client("shard-02") as sc:
                    _, owned = sc.call("store.get_raw", {"key": key})
                assert owned == blob  # byte-identical after the drain

    def test_hints_record_the_true_preference_owners(self, tmp_path):
        fleet = _fleet(tmp_path)
        with fleet:
            gw = fleet.gateway.gateway
            with fleet.client() as c:
                fleet.kill("shard-00")
                for i in range(12):
                    c.put(("blk", i), _block(i))
                for key, holder in gw.hints.pending("shard-00"):
                    preferred = gw.ring.preference(key, 2)
                    assert "shard-00" in preferred
                    assert holder not in preferred


class TestHintJournal:
    def test_restarted_gateway_owes_exactly_the_open_hints(self, tmp_path):
        path = str(tmp_path / "hints.jsonl")
        log = HintLog(path)
        log.record("shard-01", ("blk", 1), "shard-02")
        log.record("shard-01", ("blk", 2), "shard-00")
        log.record("shard-00", ("blk", 3), "shard-02")
        log.drained("shard-01", ("blk", 1))
        log.close()
        replayed = HintLog(path)
        assert replayed.counts() == {"shard-01": 1, "shard-00": 1}
        pending = dict((tuple(k), h) for k, h in replayed.pending("shard-01"))
        assert pending == {("blk", 2): "shard-00"}
        replayed.close()

    def test_torn_tail_is_tolerated(self, tmp_path):
        path = str(tmp_path / "hints.jsonl")
        log = HintLog(path)
        log.record("shard-01", ("blk", 1), "shard-02")
        log.close()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"op": "hint", "shard": "shar')  # killed mid-append
        replayed = HintLog(path)
        assert replayed.counts() == {"shard-01": 1}
        replayed.close()

    def test_record_drain_cycle_is_idempotent(self, tmp_path):
        log = HintLog(str(tmp_path / "hints.jsonl"))
        log.record("s1", ("k", 1), "s2")
        log.record("s1", ("k", 1), "s3")  # re-hint updates the holder
        assert log.pending("s1") == [(("k", 1), "s3")]
        log.drained("s1", ("k", 1))
        log.drained("s1", ("k", 1))  # double-drain is a no-op
        assert len(log) == 0
        log.close()


class TestRejoinTelemetry:
    def test_drain_counters_and_salvage(self, tmp_path):
        fleet = _fleet(tmp_path)
        with fleet:
            with fleet.client() as c:
                for i in range(6):
                    c.put(("pre", i), _block(i))
                fleet.kill("shard-01")
                for i in range(8):
                    c.put(("post", i), _block(100 + i))
                owed = c.health()["hints_pending"]
                assert owed > 0
                fleet.restart("shard-01")
                _wait_recovered(c)
                m = c.metrics()

                def val(name):
                    return m.get(name, {}).get("value", 0)

                assert val("cluster.hints.recorded") == owed
                assert val("cluster.hints.drained") == owed
                assert val("cluster.shard_down") >= 1
                assert val("cluster.shard_up") >= 1
                # every drained key is durably back on the rejoined owner
                # (pre-kill keys still in the dead shard's dirty write
                # buffer are legitimately lost there — the replica covers
                # them, which the kill-point matrix asserts via the
                # gateway; hinted keys must be present *directly*)
                ring = fleet.gateway.gateway.ring
                with fleet.shard_client("shard-01") as sc:
                    for i in range(8):
                        key = ("post", i)
                        if "shard-01" in ring.preference(key, 2):
                            out = sc.get(key).reshape(SHAPE)
                            assert np.max(np.abs(out - _block(100 + i))) <= EB
