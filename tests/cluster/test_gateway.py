"""Gateway tests: routing, replication, failover, spreading, zero-copy.

Every test boots a real :class:`~repro.cluster.fleet.LocalFleet` — N
thread-hosted shard servers plus a thread-hosted gateway — and talks
PSRV through real sockets.  Nothing is mocked, so these pin the PR 8
acceptance criteria directly:

* a ``store.put`` lands on exactly the ring's R preferred shards (each
  verified by asking the shard *directly*, bypassing the gateway);
* reads fail over past a dead replica with zero client-visible errors;
* stateless ``compress``/``decompress`` spread over live shards;
* the gateway forward path copies **zero** payload bytes
  (``service.buffers.bytes_copied`` delta stays 0 — same telemetry
  discipline as the PR 7 data plane);
* ``cluster.stats`` aggregates fleet health and per-shard stores.
"""

import numpy as np
import pytest

from repro import telemetry
from repro.cluster import LocalFleet
from repro.errors import RemoteError

EB = 1e-10
SHAPE = (4, 4, 4, 4)


@pytest.fixture(autouse=True)
def _clean_telemetry():
    yield
    telemetry.disable()
    telemetry.reset()


@pytest.fixture
def fleet(tmp_path):
    fl = LocalFleet(
        3, str(tmp_path), replication=2,
        server_kwargs={"memory_budget_bytes": 4096},
        gateway_kwargs={"health_interval_s": 0.2, "fail_after": 1},
    )
    with fl:
        yield fl


def _block(seed):
    return np.random.default_rng(seed).normal(size=SHAPE)


def _fill(client, n, base=0):
    blocks = {}
    for i in range(base, base + n):
        key = ("blk", i)
        blocks[key] = _block(i)
        client.put(key, blocks[key])
    return blocks


class TestRouting:
    def test_round_trip_through_gateway(self, fleet):
        with fleet.client() as c:
            blocks = _fill(c, 10)
            for key, data in blocks.items():
                out = c.get(key).reshape(SHAPE)
                assert np.max(np.abs(out - data)) <= EB

    def test_put_lands_on_the_preference_list(self, fleet):
        ring = fleet.gateway.gateway.ring
        with fleet.client() as c:
            blocks = _fill(c, 8)
        for key in blocks:
            preferred = ring.preference(key, 2)
            for name in (s.name for s in fleet.specs):
                with fleet.shard_client(name) as sc:
                    if name in preferred:
                        sc.get(key)  # must be there
                    else:
                        with pytest.raises(KeyError):
                            sc.get(key)

    def test_replicas_hold_identical_bytes(self, fleet):
        ring = fleet.gateway.gateway.ring
        with fleet.client() as c:
            c.put(("blk", 0), _block(0))
        a, b = ring.preference(("blk", 0), 2)
        with fleet.shard_client(a) as ca, fleet.shard_client(b) as cb:
            _, blob_a = ca.call("store.get_raw", {"key": ("blk", 0)})
            _, blob_b = cb.call("store.get_raw", {"key": ("blk", 0)})
        assert blob_a == blob_b and len(blob_a) > 0

    def test_unknown_key_is_not_found(self, fleet):
        with fleet.client() as c:
            with pytest.raises(KeyError):
                c.get(("nope", 1))

    def test_unknown_op_is_bad_request(self, fleet):
        with fleet.client() as c:
            with pytest.raises((RemoteError, ValueError)):
                c.call("store.evaporate", {})


class TestFailover:
    def test_reads_survive_primary_death(self, fleet):
        with fleet.client() as c:
            blocks = _fill(c, 12)
            fleet.kill("shard-01")
            for key, data in blocks.items():
                out = c.get(key).reshape(SHAPE)
                assert np.max(np.abs(out - data)) <= EB
            m = c.metrics()
            down = m.get("cluster.shard_down", {}).get("value", 0)
            assert down >= 1

    def test_writes_survive_shard_death(self, fleet):
        with fleet.client() as c:
            _fill(c, 4)
            fleet.kill("shard-02")
            blocks = _fill(c, 8, base=100)
            for key, data in blocks.items():
                out = c.get(key).reshape(SHAPE)
                assert np.max(np.abs(out - data)) <= EB

    def test_compress_spreads_and_fails_over(self, fleet):
        data = _block(5).ravel()
        with fleet.client() as c:
            blobs = [c.compress(data, EB, dims=SHAPE)[0] for _ in range(6)]
            fleet.kill("shard-00")
            for blob in blobs:
                out = c.decompress(blob)
                assert np.max(np.abs(out - data)) <= EB


class TestZeroCopy:
    def test_forward_path_copies_no_payload_bytes(self, fleet):
        def copied():
            snap = telemetry.metrics_snapshot()
            return snap.get("service.buffers.bytes_copied", {}).get("value", 0)

        with fleet.client() as c:
            c.put(("warm", 0), _block(0))  # settle pools/telemetry
            before = copied()
            blocks = _fill(c, 10, base=10)
            for key in blocks:
                c.get(key)
            snap = telemetry.metrics_snapshot()
            borrowed = snap.get("service.buffers.bytes_borrowed", {}).get("value", 0)
        assert copied() == before  # zero payload bytes materialized
        assert borrowed > 0


class TestStats:
    def test_cluster_stats_shape(self, fleet):
        with fleet.client() as c:
            _fill(c, 6)
            stats = c.cluster_stats()
        fleet_info = stats["fleet"]
        assert fleet_info["n_shards"] == 3
        assert fleet_info["replication"] == 2
        assert sorted(stats["shards"]) == [s.name for s in fleet.specs]
        for shard in stats["shards"].values():
            assert shard["up"] is True
            assert shard["health"].get("status") == "ok"
        assert any(k.startswith("cluster.") for k in stats["gateway_metrics"])

    def test_store_stats_aggregates_over_shards(self, fleet):
        with fleet.client() as c:
            _fill(c, 9)
            agg = c.stats()
        assert agg["shards_reporting"] == 3
        # R=2: every block stored twice across the fleet
        assert agg.get("n_entries", 0) == 18
        assert agg.get("puts", 0) == 18

    def test_gateway_health_reports_fleet(self, fleet):
        with fleet.client() as c:
            h = c.health()
        assert h["role"] == "gateway"
        assert sorted(h["shards_up"]) == [s.name for s in fleet.specs]
        assert h["shards_down"] == []
        assert h["hints_pending"] == 0
