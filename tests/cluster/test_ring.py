"""Property tests for the consistent-hash ring (PR 8).

Two invariants the cluster's routing leans on, pinned as hypothesis
properties plus a few deterministic anchors:

* **Balance**: with virtual nodes, key ownership spreads across shards
  within a tolerance band — no shard owns a pathological share of a
  uniform key population.
* **Minimal remap**: adding a shard only moves keys *to* the new shard
  (everything it doesn't take stays put), and removing a shard only
  moves the keys it owned — about 1/N of the key space either way.
  This is the property that makes membership change cheap: ~1/N of the
  data migrates, not a full reshuffle.

Plus: preference lists are distinct, stable, and prefix-consistent as R
grows; tuple and wire-list spellings of a key hash identically.
"""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import HashRing, key_bytes
from repro.cluster.ring import stable_hash
from repro.errors import ParameterError

names_st = st.lists(
    st.integers(min_value=0, max_value=99).map(lambda i: f"shard-{i:02d}"),
    min_size=2, max_size=12, unique=True,
)
key_st = st.one_of(
    st.integers(min_value=0, max_value=10**6),
    st.tuples(*(st.integers(min_value=0, max_value=40),) * 4),
    st.text(max_size=20),
)


def _keys(n: int = 2000):
    return [("blk", i, i * 7 % 13) for i in range(n)]


class TestBalance:
    @given(names=names_st)
    @settings(max_examples=30, deadline=None)
    def test_ownership_within_tolerance(self, names):
        ring = HashRing(names, vnodes=64)
        counts = Counter(ring.primary(k) for k in _keys())
        share = {n: counts.get(n, 0) / 2000 for n in names}
        fair = 1.0 / len(names)
        # 64 vnodes keeps every shard within ~2.5x of fair share even in
        # unlucky draws; in practice it's far tighter.
        for n, s in share.items():
            assert s <= 2.5 * fair, (n, share)
            assert s >= fair / 2.5, (n, share)

    def test_more_vnodes_tighter_balance(self):
        names = [f"shard-{i:02d}" for i in range(4)]
        keys = _keys(4000)

        def spread(vnodes):
            counts = Counter(HashRing(names, vnodes).primary(k) for k in keys)
            return max(counts.values()) - min(counts.values())

        assert spread(128) <= spread(4)


class TestMinimalRemap:
    @given(names=names_st)
    @settings(max_examples=30, deadline=None)
    def test_add_only_remaps_to_the_new_shard(self, names):
        *old, new = names
        ring = HashRing(old, vnodes=32)
        before = {k: ring.primary(k) for k in _keys(800)}
        ring.add(new)
        for k, owner in before.items():
            now = ring.primary(k)
            assert now == owner or now == new, (k, owner, now)

    @given(names=names_st)
    @settings(max_examples=30, deadline=None)
    def test_remove_only_remaps_the_removed_shards_keys(self, names):
        ring = HashRing(names, vnodes=32)
        victim = names[0]
        before = {k: ring.primary(k) for k in _keys(800)}
        ring.remove(victim)
        for k, owner in before.items():
            if owner == victim:
                assert ring.primary(k) != victim
            else:
                assert ring.primary(k) == owner, (k, owner)

    def test_remap_fraction_is_about_one_over_n(self):
        names = [f"shard-{i:02d}" for i in range(8)]
        ring = HashRing(names, vnodes=64)
        keys = _keys(4000)
        before = {k: ring.primary(k) for k in keys}
        ring.add("shard-99")
        moved = sum(1 for k in keys if ring.primary(k) != before[k])
        # expected 1/9 of keys; allow generous slop for small vnode counts
        assert 0.03 <= moved / len(keys) <= 0.30, moved


class TestPreference:
    @given(names=names_st, key=key_st, r=st.integers(min_value=1, max_value=6))
    @settings(max_examples=60, deadline=None)
    def test_distinct_and_sized(self, names, key, r):
        ring = HashRing(names, vnodes=16)
        pref = ring.preference(key, r)
        assert len(pref) == len(set(pref)) == min(r, len(names))
        assert all(p in ring for p in pref)

    @given(names=names_st, key=key_st)
    @settings(max_examples=60, deadline=None)
    def test_prefix_consistent_as_r_grows(self, names, key):
        ring = HashRing(names, vnodes=16)
        full = ring.preference(key, len(names))
        for r in range(1, len(names) + 1):
            assert ring.preference(key, r) == full[:r]

    @given(names=names_st, key=key_st)
    @settings(max_examples=40, deadline=None)
    def test_stable_across_rebuilds(self, names, key):
        a = HashRing(names, vnodes=16)
        b = HashRing(reversed(names), vnodes=16)
        assert a.preference(key, 3) == b.preference(key, 3)


class TestKeyBytes:
    def test_tuple_and_wire_list_hash_identically(self):
        assert key_bytes((0, 1, 2, 3)) == key_bytes([0, 1, 2, 3])
        assert stable_hash(key_bytes(("a", 1))) == stable_hash(key_bytes(["a", 1]))

    @given(key=key_st)
    @settings(max_examples=60, deadline=None)
    def test_process_stable(self, key):
        assert stable_hash(key_bytes(key)) == stable_hash(key_bytes(key))

    def test_validation(self):
        with pytest.raises(ParameterError):
            HashRing(vnodes=0)
        with pytest.raises(ParameterError):
            HashRing(["a"]).preference("k", 0)
        with pytest.raises(ParameterError):
            HashRing().primary("k")
