"""Link-pool regression: a cancelled call must not re-pool a dirty link.

``_LinkPool.call`` used to close the leased link only on
``asyncio.TimeoutError``; any other exception — notably a cancellation
landing mid-``writelines``/``drain`` or while awaiting the response —
re-pooled the connection as-is.  The next caller then read the *previous*
request's late response off the shared socket: a stale frame with the
wrong id (a ``ProtocolError``), or worse a torn one.

These tests pin the fix with a slow echo server: cancel a call while the
server is still composing the reply, then assert the very next call on
the same pool gets a clean, correctly-correlated frame.
"""

import asyncio

import pytest

from repro.cluster.gateway import _LinkPool
from repro.service import protocol

MAX_PAYLOAD = 1 << 20


async def _echo_handler(reader, writer):
    """Replies to each request after ``params['delay']`` seconds."""
    try:
        while True:
            frame = await protocol.read_frame_async(reader, MAX_PAYLOAD)
            if frame is None:
                break
            header, _payload = frame
            params = header.get("params") or {}
            await asyncio.sleep(float(params.get("delay", 0)))
            writer.write(
                protocol.encode_response(header.get("id"), {"echo": params})
            )
            await writer.drain()
    except (ConnectionError, asyncio.CancelledError):
        pass
    finally:
        writer.close()


class TestCancelledCall:
    def test_next_call_after_cancellation_gets_a_clean_frame(self):
        async def run():
            server = await asyncio.start_server(_echo_handler, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            pool = _LinkPool("127.0.0.1", port, 1, 10.0, MAX_PAYLOAD)
            try:
                # a successful warm-up call leaves one live pooled link
                header, _ = await pool.call("echo", {"delay": 0, "tag": 1},
                                            b"", {})
                assert header["ok"]
                # cancel mid-response-wait: the server will still write
                # the reply for this request id onto the connection later
                task = asyncio.ensure_future(
                    pool.call("echo", {"delay": 0.5, "tag": 2}, b"", {})
                )
                await asyncio.sleep(0.1)
                task.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await task
                # with the old behavior the dirty link is re-pooled and
                # this call reads the stale tag-2 reply (id mismatch →
                # ProtocolError); fixed, it runs on a fresh connection
                header, _ = await pool.call("echo", {"delay": 0, "tag": 3},
                                            b"", {})
                assert header["ok"]
                assert header["result"]["echo"]["tag"] == 3
            finally:
                await pool.close()
                server.close()
                await server.wait_closed()

        asyncio.run(run())

    def test_cancelled_link_is_aborted_before_repooling(self):
        async def run():
            server = await asyncio.start_server(_echo_handler, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            pool = _LinkPool("127.0.0.1", port, 1, 10.0, MAX_PAYLOAD)
            try:
                header, _ = await pool.call("echo", {"delay": 0}, b"", {})
                assert header["ok"]
                task = asyncio.ensure_future(
                    pool.call("echo", {"delay": 0.5}, b"", {})
                )
                await asyncio.sleep(0.1)
                task.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await task
                link = pool._free.get_nowait()
                assert link._writer is None  # disconnected, reconnects lazily
                pool._free.put_nowait(link)
            finally:
                await pool.close()
                server.close()
                await server.wait_closed()

        asyncio.run(run())

    def test_pool_close_aborts_links_returned_by_inflight_calls(self):
        async def run():
            server = await asyncio.start_server(_echo_handler, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            pool = _LinkPool("127.0.0.1", port, 1, 10.0, MAX_PAYLOAD)
            try:
                task = asyncio.ensure_future(
                    pool.call("echo", {"delay": 0.3}, b"", {})
                )
                await asyncio.sleep(0.1)
                await pool.close()  # link is leased: close() can't see it
                header, _ = await task  # completes after the close
                assert header["ok"]
                link = pool._free.get_nowait()
                assert link._writer is None  # aborted on return
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(run())
