"""Hint-journal durability, compaction, and multi-gateway sharing (PR 10).

Three contracts:

* **Durability** — with ``durable=True`` every appended record is
  fsync'd (a hint that survived :meth:`HintLog.record` survives a host
  crash); ``durable=False`` skips the syncs for fast tests.
* **Kill-safe compaction** — the same tmp-file + ``os.replace``
  discipline as the spill-store compaction, pinned with a kill-point
  matrix (the ``tests/faults`` idiom): a process dying at any stage
  leaves a journal whose replay yields exactly the open hints.
* **Shared journals** — N gateway processes appending to one file see
  each other's records via :meth:`refresh`, and survive a peer's
  compaction via the inode-change re-replay.
"""

import os

import pytest

from repro.cluster.hints import COMPACT_MIN_DRAINS, HintLog


def _keys(n):
    return [["blk", i] for i in range(n)]


class TestDurability:
    @pytest.mark.parametrize("durable", [True, False])
    def test_fsync_follows_the_knob(self, tmp_path, monkeypatch, durable):
        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd))
        )
        log = HintLog(str(tmp_path / "hints.jsonl"), durable=durable)
        log.record("shard-01", ["blk", 1], "shard-02")
        log.drained("shard-01", ["blk", 1])
        log.close()
        assert (len(synced) == 2) if durable else (not synced)

    def test_hints_survive_an_unclosed_journal(self, tmp_path):
        path = str(tmp_path / "hints.jsonl")
        log = HintLog(path)
        for key in _keys(5):
            log.record("shard-01", key, "shard-02")
        log.drained("shard-01", ["blk", 0])
        # simulated kill: no close(), a new process replays the file
        revived = HintLog(path)
        owed = {tuple(k) for k, _ in revived.pending("shard-01")}
        assert owed == {("blk", i) for i in range(1, 5)}
        revived.close()
        log.close()

    def test_replay_tolerates_a_torn_tail(self, tmp_path):
        path = str(tmp_path / "hints.jsonl")
        log = HintLog(path)
        log.record("shard-01", ["blk", 1], "shard-02")
        log.close()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"op": "hint", "shard": "shard-0')  # killed mid-write
        revived = HintLog(path)
        assert [k for k, _ in revived.pending("shard-01")] == [["blk", 1]]
        revived.close()


class _Kill(Exception):
    """Injected process death inside the compaction sequence."""


class TestCompaction:
    def test_maybe_compact_waits_for_drains_to_dominate(self, tmp_path):
        path = str(tmp_path / "hints.jsonl")
        log = HintLog(path, durable=False)
        log.record("shard-01", ["open", 0], "shard-02")
        for key in _keys(COMPACT_MIN_DRAINS - 1):
            log.record("shard-01", key, "shard-02")
            log.drained("shard-01", key)
        assert log.maybe_compact() == 0  # one drain short of the floor
        log.record("shard-01", ["blk", 999], "shard-02")
        log.drained("shard-01", ["blk", 999])
        assert log.maybe_compact() > 0
        assert log.compactions == 1
        with open(path, encoding="utf-8") as fh:
            lines = [ln for ln in fh if ln.strip()]
        assert len(lines) == 1  # just the open hint survived
        assert [k for k, _ in log.pending("shard-01")] == [["open", 0]]
        log.close()

    def test_compacted_journal_replays_identically(self, tmp_path):
        path = str(tmp_path / "hints.jsonl")
        log = HintLog(path, durable=False)
        for key in _keys(20):
            log.record("shard-01", key, "shard-02")
        for key in _keys(15):
            log.drained("shard-01", key)
        log.record("shard-03", ["other", 1], "shard-00")
        before = {
            shard: {tuple(k) for k, _ in log.pending(shard)}
            for shard in ("shard-01", "shard-03")
        }
        assert log.compact() > 0
        log.close()
        revived = HintLog(path)
        after = {
            shard: {tuple(k) for k, _ in revived.pending(shard)}
            for shard in ("shard-01", "shard-03")
        }
        assert after == before
        revived.close()

    @pytest.mark.parametrize("stage", ["begin", "after_tmp", "after_replace"])
    def test_kill_at_every_compaction_stage_loses_nothing(self, tmp_path, stage):
        path = str(tmp_path / "hints.jsonl")
        log = HintLog(path, durable=False)
        for key in _keys(12):
            log.record("shard-01", key, "shard-02")
        for key in _keys(8):
            log.drained("shard-01", key)
        expected = {tuple(k) for k, _ in log.pending("shard-01")}

        def hook(at):
            if at == stage:
                raise _Kill(at)

        log._compact_hook = hook
        with pytest.raises(_Kill):
            log.compact()
        # the killed process is gone; a fresh one replays what's on disk
        revived = HintLog(path)
        assert {tuple(k) for k, _ in revived.pending("shard-01")} == expected
        revived.close()
        log.close()


class TestSharedJournal:
    def test_peer_appends_arrive_via_refresh(self, tmp_path):
        path = str(tmp_path / "hints.jsonl")
        a = HintLog(path, durable=False)
        b = HintLog(path, durable=False)
        a.record("shard-01", ["blk", 1], "shard-02")
        assert not b.pending("shard-01")  # not merged yet
        b.refresh()
        assert [k for k, _ in b.pending("shard-01")] == [["blk", 1]]
        b.drained("shard-01", ["blk", 1])
        a.refresh()
        assert not a.pending("shard-01")
        a.close()
        b.close()

    def test_append_merges_the_peer_tail_first(self, tmp_path):
        path = str(tmp_path / "hints.jsonl")
        a = HintLog(path, durable=False)
        b = HintLog(path, durable=False)
        a.record("shard-01", ["blk", 1], "shard-02")
        # b appends without an explicit refresh: the append itself must
        # fold a's record in, or b's offset would skip it forever
        b.record("shard-01", ["blk", 2], "shard-03")
        owed = {tuple(k) for k, _ in b.pending("shard-01")}
        assert owed == {("blk", 1), ("blk", 2)}
        a.close()
        b.close()

    def test_peer_compaction_is_survived_via_inode_reopen(self, tmp_path):
        path = str(tmp_path / "hints.jsonl")
        a = HintLog(path, durable=False)
        b = HintLog(path, durable=False)
        for key in _keys(10):
            a.record("shard-01", key, "shard-02")
        for key in _keys(9):
            a.drained("shard-01", key)
        b.refresh()
        assert a.compact() > 0  # b's fd now points at the replaced inode
        b.refresh()
        assert {tuple(k) for k, _ in b.pending("shard-01")} == {("blk", 9)}
        # and b can still append; a sees it through its own refresh
        b.record("shard-03", ["post", 1], "shard-00")
        a.refresh()
        assert [k for k, _ in a.pending("shard-03")] == [["post", 1]]
        a.close()
        b.close()
