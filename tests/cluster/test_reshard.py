"""Live resharding: membership changes while the fleet serves (PR 10).

The contract under test, end to end on a thread-hosted fleet:

* ``add_shard`` boots a new shard, streams its share of keys over as raw
  compressed blobs, and flips the ring — moving about 1/N of the keys
  (the consistent-hashing minimal-remap promise) byte-identically;
* ``remove_shard`` migrates a shard's keys to their new owners before
  the shard stops, losing nothing;
* clients hammering the gateway throughout see **zero** failed reads —
  the migration read path tries the new owner first and falls back to
  the old owner on NOT_FOUND until the flip;
* the migration-aware routing primitives (``_candidates`` new-ring-first
  ordering, ``_put_targets`` old∪new dual-write, write-vs-copy
  invalidation) hold as unit properties.
"""

import threading

import numpy as np
import pytest

from repro import telemetry
from repro.cluster import GatewayConfig, LocalFleet
from repro.cluster.gateway import ClusterGateway, _Migration
from repro.cluster.ring import key_bytes

EB = 1e-10
SHAPE = (4, 4, 4, 4)
N_KEYS = 48


@pytest.fixture(autouse=True)
def _clean_telemetry():
    yield
    telemetry.disable()
    telemetry.reset()


def _block(seed):
    return np.random.default_rng(seed).normal(size=SHAPE)


def _fleet(tmp_path, n=3, replication=1):
    return LocalFleet(
        n, str(tmp_path), replication=replication,
        server_kwargs={"memory_budget_bytes": 4096},
        gateway_kwargs={"health_interval_s": 0.1, "fail_after": 1},
    )


class TestAddShard:
    def test_add_moves_about_one_nth_and_every_key_survives(self, tmp_path):
        blocks = {("blk", i): _block(i) for i in range(N_KEYS)}
        fleet = _fleet(tmp_path, 3, replication=1)
        with fleet:
            with fleet.client() as c:
                for key, data in blocks.items():
                    c.put(key, data)
            summary = fleet.add_shard()
            assert summary["action"] == "add"
            assert summary["shard"] == "shard-03"
            assert sorted(summary["members"]) == [
                "shard-00", "shard-01", "shard-02", "shard-03"
            ]
            assert summary["keys_scanned"] == N_KEYS
            assert summary["copy_failures"] == 0
            assert summary["keys_moved"] == summary["keys_remapped"]
            # the consistent-hash promise: ~1/4 of keys remap, no more
            ideal = N_KEYS / 4
            assert ideal / 2 <= summary["keys_moved"] <= 2 * ideal
            with fleet.client() as c:
                for key, data in blocks.items():
                    out = c.get(key).reshape(SHAPE)
                    assert np.max(np.abs(out - data)) <= EB

    def test_moved_blobs_land_byte_identical(self, tmp_path):
        blocks = {("blk", i): _block(i) for i in range(N_KEYS)}
        fleet = _fleet(tmp_path, 3, replication=1)
        with fleet:
            with fleet.client() as c:
                for key, data in blocks.items():
                    c.put(key, data)
            gw = fleet.gateway.gateway
            before = {}
            for key in blocks:
                owner = gw.ring.primary(key)
                with fleet.shard_client(owner) as sc:
                    _, blob = sc.call("store.get_raw", {"key": list(key)})
                before[key] = blob
            summary = fleet.add_shard()
            moved = [tuple(k) for k in summary["moved"]]
            assert moved
            for key in moved:
                with fleet.shard_client("shard-03") as sc:
                    _, blob = sc.call("store.get_raw", {"key": list(key)})
                assert blob == before[key]

    def test_reads_never_fail_during_add_and_remove(self, tmp_path):
        blocks = {("blk", i): _block(i) for i in range(24)}
        keys = list(blocks)
        fleet = _fleet(tmp_path, 3, replication=1)
        with fleet:
            with fleet.client() as c:
                for key, data in blocks.items():
                    c.put(key, data)
            stop = threading.Event()
            failures: list = []
            reads = [0]

            def hammer():
                with fleet.client() as c:
                    i = 0
                    while not stop.is_set():
                        key = keys[i % len(keys)]
                        try:
                            out = c.get(key).reshape(SHAPE)
                            if np.max(np.abs(out - blocks[key])) > EB:
                                failures.append(("corrupt", key))
                        except Exception as exc:  # noqa: BLE001
                            failures.append((key, exc))
                        reads[0] += 1
                        i += 1

            t = threading.Thread(target=hammer)
            t.start()
            try:
                fleet.add_shard()
                fleet.remove_shard("shard-00")
            finally:
                stop.set()
                t.join(30)
            assert not failures
            assert reads[0] > 0
            with fleet.client() as c:
                for key, data in blocks.items():
                    out = c.get(key).reshape(SHAPE)
                    assert np.max(np.abs(out - data)) <= EB


class TestRemoveShard:
    def test_remove_migrates_everything_off_the_leaver(self, tmp_path):
        blocks = {("blk", i): _block(i) for i in range(N_KEYS)}
        fleet = _fleet(tmp_path, 3, replication=1)
        with fleet:
            with fleet.client() as c:
                for key, data in blocks.items():
                    c.put(key, data)
            summary = fleet.remove_shard("shard-01")
            assert summary["action"] == "remove"
            assert "shard-01" not in summary["members"]
            assert summary["copy_failures"] == 0
            gw = fleet.gateway.gateway
            assert "shard-01" not in gw.ring
            assert "shard-01" not in gw._addrs
            with fleet.client() as c:
                for key, data in blocks.items():
                    out = c.get(key).reshape(SHAPE)
                    assert np.max(np.abs(out - data)) <= EB

    def test_status_reports_idle_between_migrations(self, tmp_path):
        fleet = _fleet(tmp_path, 2, replication=1)
        with fleet:
            with fleet.client() as c:
                status = c.reshard_status()
            assert status == {
                "active": False, "members": ["shard-00", "shard-01"]
            }


class TestMigrationRouting:
    """Unit properties of the migration-aware routing primitives."""

    def _gateway(self):
        config = GatewayConfig(
            shards=[("a", "127.0.0.1", 1), ("b", "127.0.0.1", 2)],
            replication=1, spares=1,
        )
        return ClusterGateway(config)

    def _remapped_key(self, gw, new_ring):
        for i in range(10_000):
            key = ["blk", i]
            if new_ring.primary(key) == "c" and gw.ring.primary(key) != "c":
                return key
        raise AssertionError("no key remapped to the new shard")

    def test_candidates_try_new_owner_then_fall_back_to_old(self):
        gw = self._gateway()
        new_ring = gw.ring.copy()
        new_ring.add("c")
        gw._migration = _Migration(gw.ring, new_ring, "c", None, {})
        key = self._remapped_key(gw, new_ring)
        cands = gw._candidates(key)
        assert cands[0] == "c"
        assert gw.ring.primary(key) in cands  # the fallback source
        assert len(cands) == len(set(cands))

    def test_put_targets_dual_write_old_and_new_owners(self):
        gw = self._gateway()
        new_ring = gw.ring.copy()
        new_ring.add("c")
        gw._migration = _Migration(gw.ring, new_ring, "c", None, {})
        key = self._remapped_key(gw, new_ring)
        preferred, _spares = gw._put_targets(key)
        assert "c" in preferred
        assert gw.ring.primary(key) in preferred

    def test_note_write_invalidates_the_inflight_copy(self):
        kj = key_bytes(["blk", 0]).decode()
        mig = _Migration(None, None, "c", None,
                         {kj: (["blk", 0], ["c"], ["a"])})
        mig.current = kj
        mig.note_write(kj)
        assert kj not in mig.pending
        assert mig.current_dirty
