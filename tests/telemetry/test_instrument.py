"""Instrumentation tests: codec wrapping, container I/O, store counters.

Covers the PR's acceptance criterion directly: byte totals reported by
telemetry must equal the actual payload sizes moved through the codec and
container layers.
"""

import numpy as np

from repro import telemetry
from repro.core import PaSTRICompressor
from repro.telemetry import REGISTRY, drain_spans, trace
from tests.conftest import make_patterned_stream

DIMS = (6, 6, 6, 6)
BLOCK = 6**4
EB = 1e-10


def test_codec_counters_match_actual_bytes(telemetry_on, rng):
    data = make_patterned_stream(rng, n_blocks=4)
    codec = PaSTRICompressor(dims=DIMS)
    blob = codec.compress(data, EB)
    out = codec.decompress(blob)

    assert REGISTRY.counter("codec.pastri.compress.bytes_in").value == data.nbytes
    assert REGISTRY.counter("codec.pastri.compress.bytes_out").value == len(blob)
    assert REGISTRY.counter("codec.pastri.decompress.bytes_in").value == len(blob)
    assert REGISTRY.counter("codec.pastri.decompress.bytes_out").value == out.nbytes
    # throughput convention: uncompressed bytes on both timers
    assert REGISTRY.timer("codec.pastri.compress").bytes == data.nbytes
    assert REGISTRY.timer("codec.pastri.decompress").bytes == out.nbytes


def test_codec_spans_nest_under_caller(telemetry_on, rng):
    data = make_patterned_stream(rng, n_blocks=2)
    codec = PaSTRICompressor(dims=DIMS)
    with trace("caller"):
        codec.compress(data, EB)
    (root,) = drain_spans()
    assert [c.name for c in root.children] == ["codec.pastri.compress"]


def test_disabled_codec_records_nothing(telemetry_off, rng):
    data = make_patterned_stream(rng, n_blocks=2)
    codec = PaSTRICompressor(dims=DIMS)
    blob = codec.compress(data, EB)
    codec.decompress(blob)
    # registry names may persist from earlier tests, but nothing is recorded
    t = REGISTRY.get("codec.pastri.compress")
    assert t is None or t.count == 0
    c = REGISTRY.get("codec.pastri.compress.bytes_in")
    assert c is None or c.value == 0
    assert drain_spans() == []


def test_container_write_bytes_match_frame_index(telemetry_on, rng, tmp_path):
    """container.write.payload_bytes == sum of actual frame lengths on disk."""
    from repro.streamio import open_container
    from repro.parallel.pool import parallel_compress_to_container

    data = make_patterned_stream(rng, n_blocks=8)
    path = str(tmp_path / "t.pstf")
    parallel_compress_to_container(
        "pastri", data, EB, 1, BLOCK, path,
        codec_kwargs={"dims": DIMS}, n_frames=4,
    )
    with open_container(path) as r:
        on_disk = sum(f.length for f in r.frames)
    assert REGISTRY.counter("container.write.payload_bytes").value == on_disk
    assert REGISTRY.counter("container.write.frames").value == 4
    assert REGISTRY.counter("codec.pastri.compress.bytes_in").value == data.nbytes
    assert REGISTRY.counter("codec.pastri.compress.bytes_out").value == on_disk


def test_container_read_bytes_match(telemetry_on, rng, tmp_path):
    from repro.streamio import open_container
    from repro.parallel.pool import parallel_compress_to_container

    data = make_patterned_stream(rng, n_blocks=8)
    path = str(tmp_path / "t.pstf")
    parallel_compress_to_container(
        "pastri", data, EB, 1, BLOCK, path,
        codec_kwargs={"dims": DIMS}, n_frames=4,
    )
    telemetry.reset()
    with open_container(path) as r:
        on_disk = sum(f.length for f in r.frames)
        out = r.read_all()
    assert np.max(np.abs(out - data)) <= EB
    assert REGISTRY.counter("container.read.payload_bytes").value == on_disk
    assert REGISTRY.counter("container.read.frames").value == 4


def test_parallel_pool_merges_worker_deltas(telemetry_on, rng, tmp_path):
    """A 2-worker pack yields one trace with worker spans and exact bytes."""
    from repro.parallel.pool import parallel_compress_to_container

    data = make_patterned_stream(rng, n_blocks=8)
    path = str(tmp_path / "p.pstf")
    parallel_compress_to_container(
        "pastri", data, EB, 2, BLOCK, path, codec_kwargs={"dims": DIMS},
    )
    (root,) = drain_spans()
    assert root.name == "parallel.compress_to_container"
    names = [c.name for c in root.children]
    assert "parallel.compress" in names and "container.write" in names
    pc = root.children[names.index("parallel.compress")]
    worker_spans = [c for c in pc.children if c.name == "codec.pastri.compress"]
    assert len(worker_spans) == 2
    assert all("proc" in w.attrs for w in worker_spans)
    # worker byte counters merged back into the parent registry
    assert REGISTRY.counter("codec.pastri.compress.bytes_in").value == data.nbytes


def test_store_counters_mirror_stats(telemetry_on, rng):
    from repro.pipeline.store import CompressedERIStore

    store = CompressedERIStore(PaSTRICompressor(dims=DIMS), EB)
    block = make_patterned_stream(rng, n_blocks=1)
    store.put((0, 0, 0, 0), block, dims=DIMS)
    store.get((0, 0, 0, 0))
    store.get((0, 0, 0, 0))

    assert REGISTRY.counter("store.puts").value == store.stats.puts == 1
    assert REGISTRY.counter("store.gets").value == store.stats.gets == 2
    assert (
        REGISTRY.counter("store.original_bytes").value
        == store.stats.original_bytes
        == block.nbytes
    )
    assert (
        REGISTRY.counter("store.compressed_bytes").value
        == store.stats.compressed_bytes
    )


def test_instrumentation_survives_enable_disable_cycles(rng):
    data = make_patterned_stream(rng, n_blocks=2)
    codec = PaSTRICompressor(dims=DIMS)
    blob = codec.compress(data, EB)
    try:
        telemetry.enable()
        telemetry.reset()
        codec.compress(data, EB)
        telemetry.disable()
        codec.compress(data, EB)  # not counted
        assert REGISTRY.counter("codec.pastri.compress.bytes_in").value == data.nbytes
        out = codec.decompress(blob)
        assert np.max(np.abs(out - data)) <= EB
    finally:
        telemetry.disable()
        telemetry.reset()
