"""Shared fixtures for the telemetry suite."""

import pytest

from repro import telemetry


@pytest.fixture
def telemetry_on():
    """Enabled telemetry with a clean slate, restored afterwards.

    Clears metrics and spans on both sides so tests neither see each
    other's state nor leak into the rest of the suite (the registry is
    process-global).
    """
    telemetry.enable()
    telemetry.reset()
    yield
    telemetry.disable()
    telemetry.reset()


@pytest.fixture
def telemetry_off():
    """Explicitly disabled telemetry with a clean slate."""
    telemetry.disable()
    telemetry.reset()
    yield
    telemetry.reset()
