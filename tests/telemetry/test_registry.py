"""Tests for the metrics registry (repro.telemetry.registry)."""

import threading

import pytest

from repro.errors import ParameterError
from repro.telemetry.registry import SAMPLE_CAP, MetricsRegistry


@pytest.fixture
def reg():
    return MetricsRegistry()


def test_counter_add_and_summary(reg):
    c = reg.counter("a.b")
    c.add()
    c.add(4)
    assert c.value == 5
    assert reg.snapshot()["a.b"] == {"type": "counter", "value": 5}


def test_counter_allows_negative_delta(reg):
    c = reg.counter("store.n_entries")
    c.add(3)
    c.add(-1)
    assert c.value == 2


def test_gauge_last_write_wins(reg):
    g = reg.gauge("budget")
    g.set(10.0)
    g.set(2.5)
    assert reg.snapshot()["budget"]["value"] == 2.5


def test_timer_observe_and_summary(reg):
    t = reg.timer("op")
    for s in (0.010, 0.020, 0.030):
        t.observe(s)
    s = t.summary()
    assert s["count"] == 3
    assert s["total_s"] == pytest.approx(0.060)
    assert s["min_s"] == pytest.approx(0.010)
    assert s["max_s"] == pytest.approx(0.030)
    assert s["p50_s"] == pytest.approx(0.020)


def test_timer_throughput_from_bytes(reg):
    t = reg.timer("xfer")
    t.observe(0.5, nbytes=500_000)
    t.add_bytes(500_000)
    s = t.summary()
    assert s["bytes"] == 1_000_000
    assert s["mb_per_s"] == pytest.approx(2.0)


def test_timer_context_manager(reg):
    t = reg.timer("cm")
    with t.time():
        pass
    assert t.count == 1
    assert t.total >= 0.0


def test_timer_percentile_validates_range(reg):
    t = reg.timer("p")
    with pytest.raises(ParameterError):
        t.percentile(101)
    assert t.percentile(50) == 0.0  # empty reservoir


def test_timer_sample_ring_bounds_memory(reg):
    t = reg.timer("ring")
    for i in range(SAMPLE_CAP + 100):
        t.observe(float(i))
    assert t.count == SAMPLE_CAP + 100
    assert len(t.samples) == SAMPLE_CAP


def test_name_kind_collision_raises(reg):
    reg.counter("x")
    with pytest.raises(ParameterError):
        reg.timer("x")


def test_get_or_create_returns_same_object(reg):
    assert reg.counter("same") is reg.counter("same")


def test_state_merge_roundtrip(reg):
    reg.counter("n").add(7)
    reg.gauge("g").set(1.5)
    t = reg.timer("t")
    t.observe(0.1, nbytes=100)
    t.observe(0.3)

    other = MetricsRegistry()
    other.counter("n").add(1)
    other.timer("t").observe(0.2)
    other.merge(reg.state())

    assert other.counter("n").value == 8
    assert other.gauge("g").value == 1.5
    mt = other.timer("t")
    assert mt.count == 3
    assert mt.total == pytest.approx(0.6)
    assert mt.min == pytest.approx(0.1)
    assert mt.max == pytest.approx(0.3)
    assert mt.bytes == 100


def test_merge_none_is_noop(reg):
    reg.merge(None)
    reg.merge({})
    assert len(reg) == 0


def test_reset_zeroes_but_keeps_names(reg):
    reg.counter("keep").add(5)
    reg.reset()
    assert reg.counter("keep").value == 0
    assert "keep" in list(reg)
    reg.clear()
    assert len(reg) == 0


def test_thread_safety_under_contention(reg):
    c = reg.counter("contended")
    t = reg.timer("contended.t")

    def work():
        for _ in range(1000):
            c.add()
            t.observe(0.001)

    threads = [threading.Thread(target=work) for _ in range(4)]
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    assert c.value == 4000
    assert t.count == 4000
