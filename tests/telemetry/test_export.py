"""Tests for the telemetry exporters (repro.telemetry.export)."""

import json

import pytest

from repro.errors import FormatError
from repro.telemetry import (
    REGISTRY,
    format_metrics_table,
    format_report,
    format_span_tree,
    metrics_snapshot,
    peek_spans,
    read_trace_jsonl,
    trace,
    write_trace_jsonl,
)


def _sample_run():
    REGISTRY.counter("codec.pastri.compress.bytes_in").add(1000)
    with trace("pack", workers=2):
        with trace("codec.pastri.compress"):
            pass
        with trace("codec.pastri.compress"):
            pass


def test_jsonl_roundtrip(telemetry_on, tmp_path):
    _sample_run()
    path = str(tmp_path / "trace.jsonl")
    write_trace_jsonl(path)

    roots, snapshot = read_trace_jsonl(path)
    assert [r.name for r in roots] == ["pack"]
    assert [c.name for c in roots[0].children] == ["codec.pastri.compress"] * 2
    assert snapshot["codec.pastri.compress.bytes_in"]["value"] == 1000
    # spans were peeked, not drained: the live report still works
    assert "pack" in format_report()


def test_jsonl_schema_lines(telemetry_on, tmp_path):
    _sample_run()
    path = tmp_path / "trace.jsonl"
    write_trace_jsonl(str(path))
    lines = [json.loads(x) for x in path.read_text().splitlines()]
    assert lines[0]["type"] == "meta"
    assert lines[0]["version"] == 1
    assert lines[-1]["type"] == "metrics"
    assert all(x["type"] == "span" for x in lines[1:-1])


def test_read_rejects_garbage(tmp_path):
    bad = tmp_path / "bad.jsonl"
    bad.write_text("not json at all\n")
    with pytest.raises(FormatError):
        read_trace_jsonl(str(bad))
    bad.write_text('{"type":"mystery"}\n')
    with pytest.raises(FormatError):
        read_trace_jsonl(str(bad))


def test_read_skips_blank_lines(tmp_path):
    p = tmp_path / "t.jsonl"
    p.write_text('{"type":"meta","version":1}\n\n{"type":"metrics","metrics":{}}\n')
    roots, snapshot = read_trace_jsonl(str(p))
    assert roots == [] and snapshot == {}


def test_span_tree_merges_same_name_siblings(telemetry_on):
    _sample_run()
    text = format_span_tree(peek_spans())
    # two compress calls render as one aggregated row with calls=2
    (row,) = [ln for ln in text.splitlines() if "codec.pastri.compress" in ln]
    assert "2" in row.split()


def test_span_tree_empty(telemetry_on):
    assert "no spans" in format_span_tree([])


def test_metrics_table_sections(telemetry_on):
    REGISTRY.timer("t.timed").observe(0.01, nbytes=10_000)
    REGISTRY.counter("c.counted").add(5)
    table = format_metrics_table()
    assert "t.timed" in table
    assert "c.counted" in table
    assert "MB/s" in table


def test_metrics_snapshot_is_json_pure(telemetry_on):
    _sample_run()
    json.dumps(metrics_snapshot())  # must not raise
