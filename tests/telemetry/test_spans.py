"""Tests for span tracing (repro.telemetry.spans)."""

import pytest

from repro import telemetry
from repro.telemetry import (
    REGISTRY,
    Span,
    current_span,
    drain_spans,
    peek_spans,
    trace,
)
from repro.telemetry.instrument import capture_state, merge_state
from repro.telemetry.spans import adopt_spans


def test_disabled_trace_is_noop(telemetry_off):
    with trace("nothing") as sp:
        assert sp is None
    assert peek_spans() == []
    assert REGISTRY.get("nothing") is None


def test_nesting_builds_a_tree(telemetry_on):
    with trace("parent") as p:
        with trace("child.a"):
            pass
        with trace("child.b"):
            pass
    roots = drain_spans()
    assert [r.name for r in roots] == ["parent"]
    assert [c.name for c in p.children] == ["child.a", "child.b"]
    assert p.wall_s >= sum(c.wall_s for c in p.children)


def test_attrs_and_error_marking(telemetry_on):
    with pytest.raises(ValueError):
        with trace("boom", key=3):
            raise ValueError("nope")
    (root,) = drain_spans()
    assert root.attrs["key"] == 3
    assert root.attrs["error"] == "ValueError"


def test_current_span_tracks_stack(telemetry_on):
    assert current_span() is None
    with trace("outer") as o:
        assert current_span() is o
        with trace("inner") as i:
            assert current_span() is i
        assert current_span() is o
    assert current_span() is None


def test_span_feeds_same_named_timer(telemetry_on):
    with trace("stage.x"):
        pass
    with trace("stage.x"):
        pass
    t = REGISTRY.get("stage.x")
    assert t is not None and t.count == 2
    assert t.total == pytest.approx(sum(t.samples))


def test_span_dict_roundtrip(telemetry_on):
    with trace("root", a=1):
        with trace("kid"):
            pass
    (root,) = drain_spans()
    clone = Span.from_dict(root.to_dict())
    assert clone.name == "root"
    assert clone.attrs == {"a": 1}
    assert [c.name for c in clone.children] == ["kid"]
    assert clone.wall_s == pytest.approx(root.wall_s)


def test_adopt_spans_grafts_under_open_span(telemetry_on):
    worker = Span("codec.pastri.compress")
    worker.wall_s = 0.25
    with trace("parallel.compress") as p:
        adopt_spans([worker.to_dict()], proc=1234)
    assert [c.name for c in p.children] == ["codec.pastri.compress"]
    assert p.children[0].attrs["proc"] == 1234


def test_adopt_spans_without_open_span_buffers_roots(telemetry_on):
    adopt_spans([Span("orphan").to_dict()], proc=1)
    assert [r.name for r in peek_spans()] == ["orphan"]


def test_capture_state_is_a_delta(telemetry_on):
    REGISTRY.counter("c").add(3)
    with trace("w"):
        pass
    delta = capture_state()
    assert delta["metrics"]["c"]["value"] == 3
    assert [s["name"] for s in delta["spans"]] == ["w"]
    # captured state is reset: a second capture is empty
    assert capture_state()["metrics"]["c"]["value"] == 0
    assert peek_spans() == []


def test_capture_state_disabled_returns_none(telemetry_off):
    assert capture_state() is None
    merge_state(None)  # no-op


def test_merge_state_folds_metrics_and_spans(telemetry_on):
    delta = {
        "pid": 99,
        "metrics": {"codec.x.compress.bytes_in": {"type": "counter", "value": 10}},
        "spans": [Span("codec.x.compress").to_dict()],
    }
    with trace("parent") as p:
        merge_state(delta)
    assert REGISTRY.counter("codec.x.compress.bytes_in").value == 10
    assert p.children[0].attrs["proc"] == 99


def test_buffer_cap_drops_and_counts(telemetry_on, monkeypatch):
    import repro.telemetry.spans as spans_mod

    monkeypatch.setattr(spans_mod, "BUFFER_CAP", 2)
    for _ in range(5):
        with trace("r"):
            pass
    assert len(peek_spans()) == 2
    assert REGISTRY.counter("telemetry.spans.dropped").value == 3


def test_reset_clears_buffer_and_stack(telemetry_on):
    with trace("done"):
        pass
    telemetry.reset()
    assert peek_spans() == []
    assert current_span() is None
