"""Tests for the codec registry and validation helpers (repro.api)."""

import numpy as np
import pytest

from repro import api
from repro.errors import ParameterError


def test_all_five_codecs_registered():
    assert set(api.available_codecs()) >= {"pastri", "sz", "zfp", "deflate", "fpc"}


def test_get_codec_passes_kwargs():
    codec = api.get_codec("pastri", config="(dd|dd)")
    assert codec.spec.dims == (6, 6, 6, 6)


def test_get_codec_case_insensitive():
    assert api.get_codec("SZ").name == "sz"


def test_unknown_codec_rejected():
    with pytest.raises(ParameterError):
        api.get_codec("lzma")


def test_every_registered_codec_satisfies_protocol(rng):
    data = rng.standard_normal(2000) * 1e-7
    for name in api.available_codecs():
        kwargs = {"dims": (2, 2, 2, 2)} if name in ("pastri", "lowrank") else {}
        codec = api.get_codec(name, **kwargs)
        assert isinstance(codec, api.Codec)
        blob = codec.compress(data, 1e-10)
        out = codec.decompress(blob)
        assert np.max(np.abs(out - data)) <= 1e-10


def test_validate_input_coerces_and_checks():
    out = api.validate_input([[1, 2], [3, 4]])
    assert out.dtype == np.float64 and out.shape == (4,)
    with pytest.raises(ParameterError):
        api.validate_input(np.array([]))
    with pytest.raises(ParameterError):
        api.validate_input(np.array([1.0, np.inf]))


def test_validate_error_bound():
    assert api.validate_error_bound(1e-10) == 1e-10
    for bad in (0.0, -1.0, np.nan):
        with pytest.raises(ParameterError):
            api.validate_error_bound(bad)


def test_custom_codec_registration():
    class Echo:
        name = "echo"

        def compress(self, data, error_bound):
            return data.tobytes()

        def decompress(self, blob):
            return np.frombuffer(blob, dtype=np.float64)

    api.register_codec("echo-test", lambda: Echo())
    codec = api.get_codec("echo-test")
    data = np.arange(4.0)
    assert np.array_equal(codec.decompress(codec.compress(data, 0)), data)


# ---------------------------------------------------------------------------
# codec specs (the container header's self-description)


#: Constructor kwargs (small geometries) for every shippable codec.  The
#: completeness test below fails the build if a codec is registered
#: without an entry here, so new codecs cannot silently skip the
#: self-description round-trip.
SPEC_CODECS = {
    "pastri": {"dims": (2, 2, 3, 3)},
    "sz": {},
    "zfp": {},
    "lowrank": {"dims": (2, 2, 3, 3), "method": "cp", "rank": 2, "max_rank": 9},
    "deflate": {},
    "fpc": {},
}


def test_spec_codec_table_is_complete():
    registered = {n for n in api.available_codecs() if not n.endswith("-test")}
    assert registered == set(SPEC_CODECS)


@pytest.mark.parametrize("name", sorted(SPEC_CODECS))
def test_codec_spec_roundtrip(name, rng):
    """spec -> JSON -> codec_from_spec rebuilds a behaviourally equal codec."""
    import json

    codec = api.get_codec(name, **SPEC_CODECS[name])
    spec = api.codec_spec(codec)
    assert spec["name"] == name
    assert isinstance(spec["kwargs"], dict)
    wire_spec = json.loads(json.dumps(spec))  # survives the container header
    rebuilt = api.codec_from_spec(wire_spec)
    assert rebuilt.name == name
    assert api.codec_spec(rebuilt) == spec
    # behavioural equality: identical bytes out, identical decode
    data = rng.standard_normal(36 * 4 + 5) * 1e-7
    blob = codec.compress(data, 1e-10)
    assert rebuilt.compress(data, 1e-10) == blob
    np.testing.assert_array_equal(rebuilt.decompress(blob), codec.decompress(blob))


def test_codec_spec_is_json_serializable():
    import json

    codec = api.get_codec("pastri", dims=(6, 6, 6, 6), metric="aar", tree_id=2)
    spec = json.loads(json.dumps(api.codec_spec(codec)))
    rebuilt = api.codec_from_spec(spec)
    assert rebuilt.spec.dims == (6, 6, 6, 6)
    assert rebuilt.metric.value == "aar"
    assert rebuilt.tree_id == 2


def test_codec_spec_without_kwargs_method():
    class Echo:
        name = "echo"

        def compress(self, data, error_bound):
            return data.tobytes()

        def decompress(self, blob):
            return np.frombuffer(blob, dtype=np.float64)

    assert api.codec_spec(Echo()) == {"name": "echo", "kwargs": {}}


def test_codec_from_spec_validates_shape():
    for bad in (None, [], "pastri", {}, {"kwargs": {}}, {"name": 3, "kwargs": {}},
                {"name": "sz", "kwargs": [1, 2]}):
        with pytest.raises(ParameterError):
            api.codec_from_spec(bad)
    with pytest.raises(ParameterError):
        api.codec_from_spec({"name": "no-such-codec", "kwargs": {}})
