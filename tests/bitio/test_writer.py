"""Unit tests for repro.bitio.writer.BitWriter."""

import numpy as np
import pytest

from repro.bitio import BitReader, BitWriter
from repro.errors import ParameterError


def test_empty_writer_produces_no_bytes():
    assert BitWriter().getvalue() == b""


def test_single_bits_pack_msb_first():
    w = BitWriter()
    for b in (1, 0, 1, 1, 0, 0, 0, 1):
        w.write_bit(b)
    assert w.getvalue() == bytes([0b10110001])


def test_tail_is_zero_padded():
    w = BitWriter()
    w.write_bit(1)
    assert w.getvalue() == bytes([0b10000000])
    assert w.nbits == 1


def test_write_uint_round_numbers():
    w = BitWriter()
    w.write_uint(0xABCD, 16)
    assert w.getvalue() == b"\xab\xcd"


def test_write_uint_zero_width_is_noop():
    w = BitWriter()
    w.write_uint(0, 0)
    assert w.nbits == 0


def test_write_uint_full_64_bits():
    w = BitWriter()
    w.write_uint(2**64 - 1, 64)
    assert w.getvalue() == b"\xff" * 8


def test_write_uint_rejects_overflow_value():
    w = BitWriter()
    with pytest.raises(ParameterError):
        w.write_uint(16, 4)


def test_write_uint_rejects_negative():
    with pytest.raises(ParameterError):
        BitWriter().write_uint(-1, 8)


def test_write_uint_rejects_bad_width():
    with pytest.raises(ParameterError):
        BitWriter().write_uint(0, 65)


def test_write_uint_array_matches_scalar_writes(rng):
    vals = rng.integers(0, 2**17, 100)
    w1 = BitWriter()
    w1.write_uint_array(vals, 17)
    w2 = BitWriter()
    for v in vals:
        w2.write_uint(int(v), 17)
    assert w1.getvalue() == w2.getvalue()


def test_write_uint_array_rejects_too_large_elements():
    with pytest.raises(ParameterError):
        BitWriter().write_uint_array(np.array([7, 8]), 3)


def test_write_varlen_array_concatenates_codes():
    w = BitWriter()
    # '1' + '010' + '11' = 101011
    w.write_varlen_array(np.array([1, 2, 3], dtype=np.uint64), np.array([1, 3, 2]))
    assert w.nbits == 6
    assert w.getvalue() == bytes([0b10101100])


def test_write_varlen_rejects_over_64_bit_codes():
    with pytest.raises(ParameterError):
        BitWriter().write_varlen_array(np.array([0], dtype=np.uint64), np.array([65]))


def test_write_double_is_ieee_bits():
    w = BitWriter()
    w.write_double(1.0)
    assert w.getvalue() == np.float64(1.0).tobytes()[::-1]  # big-endian order


def test_write_bytes_roundtrip():
    w = BitWriter()
    w.write_bit(1)  # force misalignment
    w.write_bytes(b"xyz")
    r = BitReader(w.getvalue())
    assert r.read_bit() == 1
    assert r.read_bytes(3) == b"xyz"


def test_write_bigint_matches_uint_for_small_values():
    w1 = BitWriter()
    w1.write_bigint(0x3F2, 12)
    w2 = BitWriter()
    w2.write_uint(0x3F2, 12)
    assert w1.getvalue() == w2.getvalue()


def test_write_bigint_wide_payload_roundtrip():
    value = (1 << 200) | 0xDEADBEEF
    w = BitWriter()
    w.write_bigint(value, 201)
    r = BitReader(w.getvalue())
    high = r.read_uint(9)
    rest = [r.read_uint(64) for _ in range(3)]
    got = high
    for part in rest:
        got = (got << 64) | part
    assert got == value


def test_write_bigint_rejects_overflow():
    with pytest.raises(ParameterError):
        BitWriter().write_bigint(8, 3)


def test_extend_concatenates_streams():
    a, b = BitWriter(), BitWriter()
    a.write_uint(0b101, 3)
    b.write_uint(0b01101, 5)
    a.extend(b)
    assert a.nbits == 8
    assert a.getvalue() == bytes([0b10101101])


def test_getvalue_is_idempotent():
    w = BitWriter()
    w.write_uint(0xAA, 8)
    assert w.getvalue() == w.getvalue()
    w.write_uint(0xBB, 8)
    assert w.getvalue() == b"\xaa\xbb"


def test_staged_write_bit_matches_array_writes(rng):
    """write_bit's staged scalar buffer must not change getvalue output.

    Interleaves single-bit writes with every other write kind so the lazy
    flush points are exercised, and checks against one bulk reference.
    """
    flags = rng.integers(0, 2, size=37)
    w = BitWriter()
    for f in flags[:5]:
        w.write_bit(int(f))
    w.write_uint(0x2B, 6)
    for f in flags[5:9]:
        w.write_bit(int(f))
    w.write_uint_array(np.array([3, 1, 2], dtype=np.uint64), 2)
    for f in flags[9:]:
        w.write_bit(int(f))

    ref = BitWriter()
    ref.write_bits_array(flags[:5].astype(np.uint8))
    ref.write_uint(0x2B, 6)
    ref.write_bits_array(flags[5:9].astype(np.uint8))
    ref.write_uint_array(np.array([3, 1, 2], dtype=np.uint64), 2)
    ref.write_bits_array(flags[9:].astype(np.uint8))

    assert w.nbits == ref.nbits == 37 + 6 + 6
    assert w.getvalue() == ref.getvalue()


def test_write_bit_nbits_counts_before_flush():
    w = BitWriter()
    w.write_bit(1)
    w.write_bit(0)
    assert w.nbits == 2  # staged but not yet flushed
    assert w.getvalue() == bytes([0b10000000])
