"""Unit tests for repro.bitio.reader.BitReader."""

import numpy as np
import pytest

from repro.bitio import BitReader, BitWriter
from repro.errors import FormatError, ParameterError


def test_read_bits_msb_first():
    r = BitReader(bytes([0b10110001]))
    assert [r.read_bit() for _ in range(8)] == [1, 0, 1, 1, 0, 0, 0, 1]


def test_read_uint_matches_written():
    w = BitWriter()
    w.write_uint(0x1234, 16)
    w.write_uint(5, 3)
    r = BitReader(w.getvalue())
    assert r.read_uint(16) == 0x1234
    assert r.read_uint(3) == 5


def test_read_uint_array_vectorised_equals_scalar(rng):
    vals = rng.integers(0, 2**13, 64).astype(np.uint64)
    w = BitWriter()
    w.write_uint_array(vals, 13)
    blob = w.getvalue()
    r1, r2 = BitReader(blob), BitReader(blob)
    got = r1.read_uint_array(64, 13)
    want = [r2.read_uint(13) for _ in range(64)]
    assert got.tolist() == want


def test_read_uint_64_bit_values():
    w = BitWriter()
    w.write_uint(2**64 - 1, 64)
    assert BitReader(w.getvalue()).read_uint(64) == 2**64 - 1


def test_read_double_roundtrip():
    w = BitWriter()
    w.write_double(-2.5e-11)
    assert BitReader(w.getvalue()).read_double() == -2.5e-11


def test_underflow_raises_format_error():
    r = BitReader(b"\x00")
    r.read_uint(8)
    with pytest.raises(FormatError):
        r.read_bit()


def test_read_rejects_width_over_64():
    with pytest.raises(ParameterError):
        BitReader(b"\x00" * 16).read_uint(65)


def test_seek_and_pos():
    r = BitReader(bytes([0b11110000]))
    r.seek(4)
    assert r.pos == 4
    assert r.read_uint(4) == 0
    with pytest.raises(FormatError):
        r.seek(100)


def test_skip_advances_without_decoding():
    r = BitReader(bytes([0xFF, 0x0F]))
    r.skip(12)
    assert r.read_uint(4) == 0xF


def test_remaining_counts_padding():
    r = BitReader(b"\xaa")
    assert r.remaining == 8
    r.read_bit()
    assert r.remaining == 7


def test_reader_accepts_unpacked_uint8_array():
    arr = np.frombuffer(b"\xf0", dtype=np.uint8)
    assert BitReader(arr).read_uint(4) == 0xF


def test_read_zero_count_array():
    r = BitReader(b"\x00")
    out = r.read_uint_array(0, 7)
    assert out.size == 0 and r.pos == 0
