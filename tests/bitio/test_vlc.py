"""Unit tests for the pointer-jumping prefix decoder (repro.bitio.vlc)."""

import numpy as np
import pytest

from repro.bitio.vlc import (
    decode_prefix_stream,
    gather_bit_windows,
    sliding_windows_u16,
    token_start_positions,
)
from repro.errors import FormatError


def bits_of(s: str) -> np.ndarray:
    return np.array([int(c) for c in s], dtype=np.uint8)


def test_token_start_positions_unary_chain():
    # Tokens of length 2 everywhere: starts at 0, 2, 4, ...
    len_at = np.full(10, 2, dtype=np.int64)
    pos = token_start_positions(len_at, 5)
    assert pos.tolist() == [0, 2, 4, 6, 8]


def test_token_start_positions_variable_lengths():
    # lengths: offset0 ->1, offset1 ->3, offset4 ->2 ...
    len_at = np.array([1, 3, 9, 9, 2, 9, 1], dtype=np.int64)
    pos = token_start_positions(len_at, 4)
    assert pos.tolist() == [0, 1, 4, 6]


def test_token_start_positions_zero_tokens():
    assert token_start_positions(np.array([1]), 0).size == 0


def test_decode_prefix_stream_simple_code():
    # Code: '0' -> len 1; '1x' -> len 2.
    stream = bits_of("0" + "11" + "0" + "10")

    def length_fn(b, off):
        return np.where(b[off] == 0, 1, 2)

    pos, lens = decode_prefix_stream(stream, 0, 4, length_fn, 1)
    assert pos.tolist() == [0, 1, 3, 4]
    assert lens.tolist() == [1, 2, 1, 2]


def test_decode_prefix_stream_with_start_offset():
    stream = bits_of("1111" + "0" + "10")

    def length_fn(b, off):
        return np.where(b[off] == 0, 1, 2)

    pos, lens = decode_prefix_stream(stream, 4, 2, length_fn, 1)
    assert pos.tolist() == [4, 5]


def test_decode_prefix_stream_truncation_raises():
    stream = bits_of("10")

    def length_fn(b, off):
        return np.full(off.shape, 5, dtype=np.int64)

    with pytest.raises(FormatError):
        decode_prefix_stream(stream, 0, 3, length_fn, 1)


def test_gather_bit_windows_values():
    bits = bits_of("1011001110")
    got = gather_bit_windows(bits, np.array([0, 3, 6]), 3)
    assert got.tolist() == [0b101, 0b100, 0b111]


def test_gather_bit_windows_empty_offsets():
    assert gather_bit_windows(bits_of("101"), np.zeros(0, dtype=np.int64), 2).size == 0


def test_sliding_windows_match_gather(rng):
    bits = (rng.random(200) < 0.5).astype(np.uint8)
    for width in (1, 5, 8, 13, 16):
        win = sliding_windows_u16(bits, width)
        offsets = np.arange(bits.size - width, dtype=np.int64)
        want = gather_bit_windows(bits, offsets, width)
        assert np.array_equal(win[: offsets.size], want.astype(np.int64))


def test_sliding_windows_rejects_wide_window():
    with pytest.raises(FormatError):
        sliding_windows_u16(np.zeros(8, dtype=np.uint8), 17)
