"""Tests for relative error-bound resolution (repro.api.resolve_error_bound)."""

import numpy as np
import pytest

from repro.api import get_codec, resolve_error_bound
from repro.errors import ParameterError
from tests.conftest import make_patterned_stream


def test_abs_mode_passthrough(rng):
    data = rng.standard_normal(100)
    assert resolve_error_bound(data, 1e-10, "abs") == 1e-10


def test_rel_mode_scales_by_range():
    data = np.array([0.0, 2.0, 4.0])
    assert resolve_error_bound(data, 1e-3, "rel") == pytest.approx(4e-3)


def test_rel_mode_rejects_constant_data():
    with pytest.raises(ParameterError):
        resolve_error_bound(np.ones(10), 1e-3, "rel")


def test_unknown_mode_rejected(rng):
    with pytest.raises(ParameterError):
        resolve_error_bound(rng.standard_normal(4), 1e-3, "relative")


@pytest.mark.parametrize("name", ["pastri", "sz", "zfp"])
def test_relative_bound_holds_through_codecs(name, rng):
    data = make_patterned_stream(rng, n_blocks=5, amp=3.7)  # O(1) values
    rel = 1e-6
    eb = resolve_error_bound(data, rel, "rel")
    kwargs = {"dims": (6, 6, 6, 6)} if name == "pastri" else {}
    codec = get_codec(name, **kwargs)
    out = codec.decompress(codec.compress(data, eb))
    rng_span = data.max() - data.min()
    assert np.max(np.abs(out - data)) <= rel * rng_span
