"""Tests for the sequential paths of the PSTF container (repro.streamio).

Random access, corruption handling, and the v1 golden fixture live in
``tests/test_container.py``.
"""

import io
import struct

import numpy as np
import pytest

from repro.chem.synthetic import SyntheticERIModel
from repro.core import PaSTRICompressor
from repro.errors import FormatError
from repro.streamio import (
    StreamSummary,
    compress_dataset_to_file,
    compress_stream,
    decompress_file,
    decompress_stream,
    read_stream_header,
    write_v1_stream,
)
from repro.sz import SZCompressor

EB = 1e-10


def codec():
    return PaSTRICompressor(dims=(6, 6, 6, 6))


def test_roundtrip_in_memory():
    model = SyntheticERIModel.from_config("(dd|dd)", seed=1)
    chunks = list(model.stream(40, chunk_blocks=16))
    buf = io.BytesIO()
    summary = compress_stream(chunks, codec(), EB, buf)
    assert summary.n_chunks == 3
    assert summary.ratio > 5

    buf.seek(0)
    assert read_stream_header(buf) == "pastri"
    out = list(decompress_stream(buf, codec()))
    assert len(out) == 3
    for got, want in zip(out, chunks):
        assert np.max(np.abs(got - want)) <= EB


def test_chunked_equals_whole(tmp_path):
    model = SyntheticERIModel.from_config("(dd|dd)", seed=2)
    whole = model.generate(32).data
    path = str(tmp_path / "c.pstf")
    compress_dataset_to_file(model.stream(32, chunk_blocks=10), codec(), EB, path)
    out = decompress_file(path, codec())
    assert out.size == whole.size
    assert np.max(np.abs(out - whole)) <= EB


def test_memory_bounded_iteration(tmp_path):
    """Frames decompress lazily — consuming one frame reads only one frame."""
    model = SyntheticERIModel.from_config("(dd|dd)", seed=3)
    path = str(tmp_path / "c.pstf")
    compress_dataset_to_file(model.stream(24, chunk_blocks=8), codec(), EB, path)
    with open(path, "rb") as fh:
        read_stream_header(fh)
        it = decompress_stream(fh, codec())
        first = next(it)
        assert first.size == 8 * 1296


def test_wrong_codec_rejected(tmp_path):
    path = str(tmp_path / "c.pstf")
    data = np.sin(np.linspace(0, 5, 4000)) * 1e-7
    compress_dataset_to_file([data], SZCompressor(), EB, path)
    with pytest.raises(FormatError):
        decompress_file(path, codec())
    out = decompress_file(path, SZCompressor())
    assert np.max(np.abs(out - data)) <= EB


def test_empty_stream(tmp_path):
    path = str(tmp_path / "c.pstf")
    summary = compress_dataset_to_file([], codec(), EB, path)
    assert summary.n_chunks == 0
    assert decompress_file(path, codec()).size == 0


def test_truncated_stream_rejected(tmp_path):
    """Cuts anywhere before the end-of-frames sentinel fail the sequential read."""
    path = str(tmp_path / "c.pstf")
    compress_dataset_to_file([np.ones(100)], codec(), EB, path)
    blob = open(path, "rb").read()
    # last byte of the frame region: header | u64 len | frame | u64 sentinel
    for cut in (2, 5, 40, len(blob) // 3):
        buf = io.BytesIO(blob[:cut])
        with pytest.raises(FormatError):
            read_stream_header(buf)
            list(decompress_stream(buf, codec()))


def test_corrupt_frame_length_rejected_before_allocation(tmp_path):
    """A flipped length field must raise, not attempt a multi-GB read."""
    path = str(tmp_path / "c.pstf")
    compress_dataset_to_file([np.ones(100)], codec(), EB, path)
    raw = bytearray(open(path, "rb").read())
    with open(path, "rb") as fh:
        read_stream_header(fh)
        frame_len_at = fh.tell()
    raw[frame_len_at : frame_len_at + 8] = struct.pack("<Q", 1 << 56)  # 64 PB
    buf = io.BytesIO(bytes(raw))
    read_stream_header(buf)
    with pytest.raises(FormatError, match="corrupt frame length"):
        list(decompress_stream(buf, codec()))


def test_corrupt_frame_length_nonseekable_hits_sanity_cap():
    """Non-seekable handles fall back to the sanity cap, not a blind read."""

    class Pipe(io.BytesIO):
        def seekable(self):
            return False

    buf = io.BytesIO()
    compress_stream([np.ones(64)], codec(), EB, buf)
    raw = bytearray(buf.getvalue())
    src = io.BytesIO(bytes(raw))
    read_stream_header(src)
    frame_len_at = src.tell()
    raw[frame_len_at : frame_len_at + 8] = struct.pack("<Q", 1 << 60)
    pipe = Pipe(bytes(raw))
    read_stream_header(pipe)
    with pytest.raises(FormatError, match="sanity cap"):
        list(decompress_stream(pipe, codec()))


def test_v1_stream_still_reads_sequentially():
    """Legacy v1 streams read through the same sequential entry points."""
    data = np.linspace(0, 1, 500) * 1e-7
    buf = io.BytesIO()
    s = write_v1_stream([data, data], SZCompressor(), EB, buf)
    assert s.n_chunks == 2
    assert s.compressed_bytes == buf.getbuffer().nbytes
    buf.seek(0)
    assert read_stream_header(buf) == "sz"
    out = list(decompress_stream(buf, SZCompressor()))
    assert len(out) == 2
    for got in out:
        assert np.max(np.abs(got - data)) <= EB


def test_summary_accounting():
    data = np.zeros(5000)
    buf = io.BytesIO()
    s = compress_stream([data, data], codec(), EB, buf)
    assert isinstance(s, StreamSummary)
    assert s.original_bytes == 2 * data.nbytes
    assert s.compressed_bytes == buf.getbuffer().nbytes
