"""Tests for the out-of-core streaming container (repro.streamio)."""

import io

import numpy as np
import pytest

from repro.chem.synthetic import SyntheticERIModel
from repro.core import PaSTRICompressor
from repro.errors import FormatError
from repro.streamio import (
    StreamSummary,
    compress_dataset_to_file,
    compress_stream,
    decompress_file,
    decompress_stream,
    read_stream_header,
)
from repro.sz import SZCompressor

EB = 1e-10


def codec():
    return PaSTRICompressor(dims=(6, 6, 6, 6))


def test_roundtrip_in_memory():
    model = SyntheticERIModel.from_config("(dd|dd)", seed=1)
    chunks = list(model.stream(40, chunk_blocks=16))
    buf = io.BytesIO()
    summary = compress_stream(chunks, codec(), EB, buf)
    assert summary.n_chunks == 3
    assert summary.ratio > 5

    buf.seek(0)
    assert read_stream_header(buf) == "pastri"
    out = list(decompress_stream(buf, codec()))
    assert len(out) == 3
    for got, want in zip(out, chunks):
        assert np.max(np.abs(got - want)) <= EB


def test_chunked_equals_whole(tmp_path):
    model = SyntheticERIModel.from_config("(dd|dd)", seed=2)
    whole = model.generate(32).data
    path = str(tmp_path / "c.pstf")
    compress_dataset_to_file(model.stream(32, chunk_blocks=10), codec(), EB, path)
    out = decompress_file(path, codec())
    assert out.size == whole.size
    assert np.max(np.abs(out - whole)) <= EB


def test_memory_bounded_iteration(tmp_path):
    """Frames decompress lazily — consuming one frame reads only one frame."""
    model = SyntheticERIModel.from_config("(dd|dd)", seed=3)
    path = str(tmp_path / "c.pstf")
    compress_dataset_to_file(model.stream(24, chunk_blocks=8), codec(), EB, path)
    with open(path, "rb") as fh:
        read_stream_header(fh)
        it = decompress_stream(fh, codec())
        first = next(it)
        assert first.size == 8 * 1296


def test_wrong_codec_rejected(tmp_path):
    path = str(tmp_path / "c.pstf")
    data = np.sin(np.linspace(0, 5, 4000)) * 1e-7
    compress_dataset_to_file([data], SZCompressor(), EB, path)
    with pytest.raises(FormatError):
        decompress_file(path, codec())
    out = decompress_file(path, SZCompressor())
    assert np.max(np.abs(out - data)) <= EB


def test_empty_stream(tmp_path):
    path = str(tmp_path / "c.pstf")
    summary = compress_dataset_to_file([], codec(), EB, path)
    assert summary.n_chunks == 0
    assert decompress_file(path, codec()).size == 0


def test_truncated_container_rejected(tmp_path):
    path = str(tmp_path / "c.pstf")
    compress_dataset_to_file([np.ones(100)], codec(), EB, path)
    blob = open(path, "rb").read()
    for cut in (2, 5, len(blob) // 2, len(blob) - 4):
        buf = io.BytesIO(blob[:cut])
        with pytest.raises(FormatError):
            read_stream_header(buf)
            list(decompress_stream(buf, codec()))


def test_summary_accounting():
    data = np.zeros(5000)
    buf = io.BytesIO()
    s = compress_stream([data, data], codec(), EB, buf)
    assert isinstance(s, StreamSummary)
    assert s.original_bytes == 2 * data.nbytes
    assert s.compressed_bytes == buf.getbuffer().nbytes
