"""Unit tests for the FPC lossless reference."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.lossless import FPCCodec


def test_exact_roundtrip_random(rng):
    data = rng.standard_normal(3000) * 1e-5
    c = FPCCodec()
    out = c.decompress(c.compress(data))
    assert np.array_equal(out, data)


def test_exact_roundtrip_special_values():
    data = np.array([0.0, -0.0, 1.0, -1.0, 1e308, 5e-324, np.pi])
    c = FPCCodec()
    assert np.array_equal(c.decompress(c.compress(data)), data)


def test_constant_stream_compresses():
    data = np.full(4000, 2.5)
    c = FPCCodec()
    blob = c.compress(data)
    assert data.nbytes / len(blob) > 4  # FCM predicts repeats perfectly
    assert np.array_equal(c.decompress(blob), data)


def test_linear_ramp_dfcm_wins():
    data = np.arange(2000, dtype=np.float64)
    c = FPCCodec()
    blob = c.compress(data)
    assert np.array_equal(c.decompress(blob), data)
    assert data.nbytes / len(blob) > 1.5


def test_small_table_still_correct(rng):
    data = rng.standard_normal(500)
    c = FPCCodec(table_log2=4)
    assert np.array_equal(c.decompress(c.compress(data)), data)


def test_garbage_rejected():
    with pytest.raises(FormatError):
        FPCCodec().decompress(b"nope")
