"""Unit tests for the DEFLATE lossless reference."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.lossless import DeflateCodec


def test_exact_roundtrip(rng):
    data = rng.standard_normal(5000) * 1e-7
    c = DeflateCodec()
    assert np.array_equal(c.decompress(c.compress(data)), data)


def test_zero_stream_compresses_hugely():
    data = np.zeros(10000)
    c = DeflateCodec()
    assert data.nbytes / len(c.compress(data)) > 100


def test_random_doubles_ratio_near_one(rng):
    data = rng.standard_normal(20000)
    ratio = data.nbytes / len(DeflateCodec().compress(data))
    assert 0.9 < ratio < 1.3  # the paper's §II point: lossless ~1.1-2


def test_eri_data_in_paper_lossless_band(tiny_eri_dataset):
    data = tiny_eri_dataset.data
    ratio = data.nbytes / len(DeflateCodec().compress(data))
    assert 1.05 < ratio < 4.0


def test_level_affects_size(rng):
    data = np.repeat(rng.standard_normal(500), 10)
    fast = len(DeflateCodec(level=1).compress(data))
    best = len(DeflateCodec(level=9).compress(data))
    assert best <= fast


def test_truncated_blob_rejected():
    with pytest.raises(FormatError):
        DeflateCodec().decompress(b"\x01")
