"""Tests for PSTF-v2 random access, corruption handling, and v1 compat."""

import io
import json
import struct
import zlib
from pathlib import Path

import numpy as np
import pytest

from repro.core import PaSTRICompressor
from repro.errors import ChecksumError, FormatError
from repro.lossless.deflate import DeflateCodec
from repro.streamio import (
    ContainerWriter,
    compress_stream,
    decompress_file,
    open_container,
    write_v1_stream,
)
from repro.sz import SZCompressor

EB = 1e-10
DATA_DIR = Path(__file__).parent / "data"


def pastri():
    return PaSTRICompressor(dims=(6, 6, 6, 6))


def make_chunks(n=3, size=6**4 * 2, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(size) * 1e-7 for _ in range(n)]


def make_container(chunks, codec=None, meta=None) -> bytes:
    buf = io.BytesIO()
    compress_stream(chunks, codec or pastri(), EB, buf, meta=meta)
    return buf.getvalue()


class CountingIO(io.BytesIO):
    """BytesIO that counts how many payload bytes each read touches."""

    bytes_read = 0

    def read(self, *args):
        out = super().read(*args)
        self.bytes_read += len(out)
        return out


# ---------------------------------------------------------------------------
# random access


def test_open_container_needs_no_codec_arguments():
    chunks = make_chunks()
    r = open_container(io.BytesIO(make_container(chunks)))
    assert r.codec_name == "pastri"
    assert r.codec.spec.dims == (6, 6, 6, 6)
    assert len(r) == 3
    for i, c in enumerate(chunks):
        assert np.max(np.abs(r.read_frame(i) - c)) <= EB


def test_single_frame_read_touches_only_that_frame():
    """O(1) access: serving frame i reads index + header + frame i, no more."""
    chunks = make_chunks(n=8)
    raw = make_container(chunks)
    fh = CountingIO(raw)
    r = open_container(fh)
    setup_bytes = fh.bytes_read  # header + footer index
    target = 5
    fh.bytes_read = 0
    out = r.read_frame(target)
    assert np.max(np.abs(out - chunks[target])) <= EB
    assert fh.bytes_read == r.frames[target].length
    other_frames = sum(f.length for i, f in enumerate(r.frames) if i != target)
    assert setup_bytes + fh.bytes_read < len(raw) - other_frames + 1


def test_frames_out_of_order_and_repeatedly():
    chunks = make_chunks(n=4, seed=3)
    r = open_container(io.BytesIO(make_container(chunks)))
    for i in (3, 0, 2, 2, 1, 3):
        assert np.max(np.abs(r.read_frame(i) - chunks[i])) <= EB


def test_iteration_and_read_all():
    chunks = make_chunks(n=3, seed=4)
    r = open_container(io.BytesIO(make_container(chunks)))
    assert [c.size for c in r] == [c.size for c in chunks]
    assert np.max(np.abs(r.read_all() - np.concatenate(chunks))) <= EB
    assert r.n_elements == sum(c.size for c in chunks)


def test_keyed_frames_and_dims():
    buf = io.BytesIO()
    rng = np.random.default_rng(5)
    blocks = {f"({i}, 0)": rng.standard_normal(36) * 1e-7 for i in range(3)}
    with ContainerWriter(buf, SZCompressor(), EB) as w:
        for key, b in blocks.items():
            w.append(b, key=key, dims=(6, 6, 1, 1))
    buf.seek(0)
    r = open_container(buf)
    assert r.keys() == list(blocks)
    assert r.frames[0].dims == (6, 6, 1, 1)
    for key, b in blocks.items():
        assert np.max(np.abs(r.get(key) - b)) <= EB
    with pytest.raises(KeyError):
        r.get("missing")


def test_meta_round_trips():
    r = open_container(
        io.BytesIO(make_container(make_chunks(1), meta={"error_bound": EB, "k": "v"}))
    )
    assert r.meta == {"error_bound": EB, "k": "v"}


def test_codec_spec_round_trips_through_header():
    codec = PaSTRICompressor(dims=(3, 3, 6, 6), metric="aar", tree_id=2)
    rng = np.random.default_rng(6)
    raw = make_container([rng.standard_normal(3 * 3 * 6 * 6) * 1e-7], codec=codec)
    r = open_container(io.BytesIO(raw))
    assert r.codec.spec.dims == (3, 3, 6, 6)
    assert r.codec.metric.value == "aar"
    assert r.codec.tree_id == 2


def test_explicit_codec_name_mismatch_rejected():
    raw = make_container(make_chunks(1))
    with pytest.raises(FormatError, match="written by codec"):
        open_container(io.BytesIO(raw), codec=SZCompressor())


def test_empty_container_round_trips():
    r = open_container(io.BytesIO(make_container([])))
    assert len(r) == 0
    assert r.read_all().size == 0


def test_unclosed_writer_is_recoverable_sequentially_but_not_indexed():
    buf = io.BytesIO()
    w = ContainerWriter(buf, pastri(), EB)
    chunk = make_chunks(1)[0]
    w.append(chunk)
    # no close(): footer missing
    with pytest.raises(FormatError, match="index"):
        open_container(io.BytesIO(buf.getvalue()))


# ---------------------------------------------------------------------------
# corruption matrix: every damage class raises FormatError, never garbage


def test_truncated_header_rejected():
    raw = make_container(make_chunks(1))
    for cut in (0, 3, 5, 8):
        with pytest.raises(FormatError):
            open_container(io.BytesIO(raw[:cut]))


def test_truncated_footer_rejected():
    raw = make_container(make_chunks(2))
    for cut in (len(raw) - 1, len(raw) - 9, len(raw) - 21):
        with pytest.raises(FormatError):
            open_container(io.BytesIO(raw[:cut]))


def test_truncated_frame_bytes_rejected():
    """Deleting payload bytes (index intact) is an index/payload mismatch."""
    chunks = make_chunks(2)
    raw = make_container(chunks)
    r = open_container(io.BytesIO(raw))
    f1 = r.frames[1]
    # drop 16 bytes out of frame 1's payload
    cut = raw[: f1.offset + 4] + raw[f1.offset + 20 :]
    with pytest.raises(FormatError):
        rr = open_container(io.BytesIO(cut))
        rr.read_frame(1)


def test_flipped_payload_bit_raises_checksum_error():
    chunks = make_chunks(2)
    raw = bytearray(make_container(chunks))
    r = open_container(io.BytesIO(bytes(raw)))
    f0 = r.frames[0]
    raw[f0.offset + f0.length // 2] ^= 0x10
    rr = open_container(io.BytesIO(bytes(raw)))
    with pytest.raises(ChecksumError, match="CRC mismatch"):
        rr.read_frame(0)
    # the other frame is untouched and still serves
    assert np.max(np.abs(rr.read_frame(1) - chunks[1])) <= EB


def test_bad_index_crc_rejected_at_open():
    raw = bytearray(make_container(make_chunks(2)))
    # index payload sits between the 0-sentinel and the 20-byte trailer;
    # flip a bit safely inside it (3 bytes before the trailer).
    raw[len(raw) - 20 - 3] ^= 0x01
    with pytest.raises(ChecksumError, match="index CRC"):
        open_container(io.BytesIO(bytes(raw)))


def test_index_pointing_past_payload_rejected():
    """An index whose offsets overrun the payload region is refused."""
    chunks = make_chunks(1)
    buf = io.BytesIO()
    w = ContainerWriter(buf, pastri(), EB)
    w.append(chunks[0])
    # forge the recorded length before close() writes the index
    f = w.frames[0]
    w.frames[0] = type(f)(f.offset, f.length + 10_000, f.n_elements, f.crc32)
    w.close()
    with pytest.raises(FormatError, match="index/payload mismatch"):
        open_container(io.BytesIO(buf.getvalue()))


def test_decoded_count_must_match_index():
    """A frame decoding to the wrong element count is flagged, not returned."""
    chunks = make_chunks(1)
    buf = io.BytesIO()
    w = ContainerWriter(buf, pastri(), EB)
    blob = pastri().compress(chunks[0], EB)
    w.append_blob(blob, chunks[0].size + 7)  # lie about the count
    w.close()
    r = open_container(io.BytesIO(buf.getvalue()))
    with pytest.raises(FormatError, match="index says"):
        r.read_frame(0)


def test_corrupt_header_json_rejected():
    raw = bytearray(make_container(make_chunks(1)))
    # header JSON starts at 4 + 2 + len("pastri") + 4
    raw[4 + 2 + 6 + 4] ^= 0xFF
    with pytest.raises(FormatError):
        open_container(io.BytesIO(bytes(raw)))


# ---------------------------------------------------------------------------
# v1 compatibility


def test_golden_v1_fixture_decodes_byte_identically():
    """Committed v1 bytes from the pre-v2 writer must keep decoding exactly."""
    path = str(DATA_DIR / "golden_v1.pstf")
    expected = np.load(DATA_DIR / "golden_v1_expected.npy")
    # deflate is lossless: reconstruction must be byte-identical
    out = decompress_file(path, DeflateCodec())
    assert out.dtype == np.float64
    assert np.array_equal(out, expected)
    # and through the random-access compat path, with no codec argument
    with open_container(path) as r:
        assert r.version == 1
        assert r.codec_name == "deflate"
        assert np.array_equal(r.read_all(), expected)
        assert len(r) == 3


def test_v1_pastri_codec_rebuilt_from_first_blob():
    """v1 headers carry no kwargs; PaSTRI geometry is peeked from frame 0."""
    codec = PaSTRICompressor(dims=(3, 3, 6, 6))
    rng = np.random.default_rng(7)
    chunks = [rng.standard_normal(3 * 3 * 6 * 6 * 2) * 1e-7 for _ in range(2)]
    buf = io.BytesIO()
    write_v1_stream(chunks, codec, EB, buf)
    buf.seek(0)
    r = open_container(buf)
    assert r.version == 1
    assert r.codec.spec.dims == (3, 3, 6, 6)
    for i, c in enumerate(chunks):
        assert np.max(np.abs(r.read_frame(i) - c)) <= EB
    # v1 entries have no counts until decoded, then they are backfilled
    assert r.frames[0].n_elements == chunks[0].size
    assert r.frames[0].crc32 is None  # v1 had no checksums


def test_v1_random_access_after_scan():
    data = np.linspace(0, 1, 300) * 1e-6
    buf = io.BytesIO()
    write_v1_stream([data, 2 * data, 3 * data], SZCompressor(), EB, buf)
    buf.seek(0)
    r = open_container(buf)
    assert np.max(np.abs(r.read_frame(2) - 3 * data)) <= EB
    assert np.max(np.abs(r.read_frame(0) - data)) <= EB


def test_v1_truncation_rejected_via_compat_scan():
    buf = io.BytesIO()
    write_v1_stream([np.ones(64)], SZCompressor(), EB, buf)
    raw = buf.getvalue()
    for cut in (7, len(raw) // 2, len(raw) - 4):
        with pytest.raises(FormatError):
            open_container(io.BytesIO(raw[:cut]))


# ---------------------------------------------------------------------------
# layout details worth pinning


def test_header_json_is_sorted_and_minimal():
    """Deterministic headers: same codec + meta → byte-identical container head."""
    a = make_container(make_chunks(1), meta={"b": 1, "a": 2})
    b = make_container(make_chunks(1), meta={"a": 2, "b": 1})
    (spec_len,) = struct.unpack("<I", a[12:16])
    assert a[: 16 + spec_len] == b[: 16 + spec_len]
    header = json.loads(a[16 : 16 + spec_len])
    assert set(header) == {"codec", "meta"}


def test_trailer_crc_matches_index_payload():
    raw = make_container(make_chunks(2))
    trailer = raw[-20:]
    crc, length = struct.unpack("<IQ", trailer[:12])
    assert trailer[12:] == b"PSTFIDX2"
    payload = raw[-20 - length : -20]
    assert zlib.crc32(payload) & 0xFFFFFFFF == crc
