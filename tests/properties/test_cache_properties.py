"""Property tests for the store's cache tiers (PR 6).

Three invariants, each the contract of one overhaul mechanism:

* **Budget**: a :class:`SegmentedCache` never holds more cost units than
  its budget, whatever the op sequence, value sizes, or policy — and its
  internal byte counter always equals the sum over resident entries.
* **Scan resistance**: after a working set is established by repeated
  hits, a single full scan of arbitrary one-shot keys cannot evict it
  (the frequency-gated admission filter's whole purpose).
* **Single-flight**: ``get_or_compute`` under 8 threads computes a
  missing key exactly once, and the store never runs two decodes of the
  same key concurrently (the condition-variable claim protocol).
"""

import threading

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PaSTRICompressor
from repro.pipeline import CompressedERIStore, SegmentedCache

EB = 1e-10

keys_st = st.integers(min_value=0, max_value=30)
ops_st = st.lists(
    st.tuples(
        st.sampled_from(["put", "get", "pop", "sticky_put", "unstick"]),
        keys_st,
        st.integers(min_value=1, max_value=400),  # value size
    ),
    max_size=120,
)


@given(
    budget=st.integers(min_value=0, max_value=1000),
    policy=st.sampled_from(["2q", "lru"]),
    ops=ops_st,
)
@settings(max_examples=80, deadline=None)
def test_budget_never_exceeded(budget, policy, ops):
    cache = SegmentedCache(budget, policy=policy)
    sticky = set()
    for op, key, size in ops:
        if op == "put":
            cache.put(key, b"x" * size)
            sticky.discard(key)
        elif op == "sticky_put":
            cache.put(key, b"x" * size, sticky=True)
            sticky.add(key)
        elif op == "get":
            cache.get(key)
        elif op == "pop":
            cache.pop(key)
            sticky.discard(key)
        else:
            cache.unstick(key)
            sticky.discard(key)
        resident = cache.keys()
        total = sum(len(cache.peek(k)) for k in resident)
        assert cache.bytes == total, "byte counter drifted from contents"
        # sticky entries may not be droppable, so they can pin the cache
        # above budget transiently; everything else obeys the cap
        overshoot = sum(
            len(cache.peek(k)) for k in resident if k in sticky
        )
        assert cache.bytes <= budget + overshoot


@given(
    scan=st.lists(
        st.integers(min_value=1000, max_value=5000), max_size=60, unique=True
    ),
    n_hot=st.integers(min_value=1, max_value=6),
)
@settings(max_examples=60, deadline=None)
def test_full_scan_cannot_evict_the_working_set(scan, n_hot):
    cache = SegmentedCache(100 * (n_hot + 2))
    hot = list(range(n_hot))
    for k in hot:
        cache.put(k, b"x" * 100)
    for _ in range(10):
        for k in hot:
            assert cache.get(k) is not None
    for k in scan:  # one-shot keys, disjoint from the working set
        cache.put(k, b"x" * 100)
    assert all(k in cache for k in hot)


class _TrackingCodec(PaSTRICompressor):
    """Counts concurrent decompressions per blob (keyed by its bytes)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.lock = threading.Lock()
        self.active = {}
        self.max_concurrent = {}
        self.total = {}

    def decompress(self, blob):
        key = bytes(blob)
        with self.lock:
            self.active[key] = self.active.get(key, 0) + 1
            self.max_concurrent[key] = max(
                self.max_concurrent.get(key, 0), self.active[key]
            )
            self.total[key] = self.total.get(key, 0) + 1
        try:
            return super().decompress(blob)
        finally:
            with self.lock:
                self.active[key] -= 1


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=10, deadline=None)
def test_get_or_compute_is_single_flight_under_threads(seed):
    rng = np.random.default_rng(seed)
    codec = _TrackingCodec(dims=(6, 6, 6, 6))
    store = CompressedERIStore(codec, EB, hot_cache_blocks=8)
    blocks = {k: rng.standard_normal(1296) for k in range(3)}
    computed = {k: 0 for k in blocks}
    count_lock = threading.Lock()

    def compute(k):
        def _go():
            with count_lock:
                computed[k] += 1
            return blocks[k]

        return _go

    def worker():
        for k in sorted(blocks, key=lambda k: rng.integers(100)):
            out = store.get_or_compute(k, compute(k), dims=(6, 6, 6, 6))
            assert np.max(np.abs(out - blocks[k])) <= EB

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert all(n == 1 for n in computed.values()), computed
    # the decode of any one key never ran twice at the same time
    assert all(n <= 1 for n in codec.max_concurrent.values())
