"""Property tests for the group-by-class batched codec kernels.

Two invariant families:

* **Stream level** — random mixes of every block class (zero / raw / sparse
  / dense / tail) must round-trip within the bound, with exact tails, a
  consistent ``StreamStats`` bit accounting, and identical output on warm
  (memoised index pass) re-decodes.
* **Kernel level** — the batched tree encoders must emit exactly the bits
  of their per-block counterparts, and the moments-based dense sizing must
  equal the exact per-row count.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitio import varlen_bits
from repro.core import PaSTRICompressor
from repro.core.blocking import BlockSpec
from repro.core.trees import (
    encode_ecq,
    encode_ecq2_bits,
    encode_ecq_rows,
    encode_ecq_rows_bits,
    encoded_size_bits,
    encoded_size_bits_from_moments,
)

DIMS = (2, 2, 3, 3)
SPEC = BlockSpec(DIMS)
N = SPEC.block_size

#: Per-class block factories; each returns one (num_sb, sb_size) block.
_CLASSES = ("zero", "dense", "sparse", "raw")


def _make_block(kind: str, rng: np.random.Generator) -> np.ndarray:
    M, L = SPEC.num_sb, SPEC.sb_size
    if kind == "zero":
        return np.zeros((M, L))
    if kind == "raw":
        return rng.standard_normal((M, L)) * 1e6  # incompressible at tight EB
    base = 1e-7 * rng.standard_normal((M, 1)) * rng.standard_normal((1, L))
    if kind == "dense":
        return base * (1.0 + 1e-3 * rng.standard_normal((M, L)))
    # sparse: a patterned block plus a handful of large point deviations
    block = base.copy()
    k = rng.integers(1, 4)
    flat = block.reshape(-1)
    flat[rng.choice(flat.size, size=k, replace=False)] += 1e-7 * rng.standard_normal(k)
    return block


@given(
    kinds=st.lists(st.sampled_from(_CLASSES), min_size=1, max_size=12),
    n_tail=st.integers(0, 7),
    seed=st.integers(0, 2**32 - 1),
    eb=st.sampled_from([1e-12, 1e-10, 1e-8]),
)
@settings(max_examples=40, deadline=None)
def test_random_class_mix_roundtrips(kinds, n_tail, seed, eb):
    rng = np.random.default_rng(seed)
    blocks = [_make_block(k, rng) for k in kinds]
    data = np.concatenate(
        [np.stack(blocks).reshape(-1), rng.standard_normal(n_tail)]
    )
    codec = PaSTRICompressor(dims=DIMS, collect_stats=True)
    blob = codec.compress(data, eb)
    st_ = codec.last_stats
    assert st_.bits_total <= 8 * len(blob) < st_.bits_total + 8
    assert st_.n_blocks == len(kinds)
    out = codec.decompress(blob)
    assert out.size == data.size
    assert np.max(np.abs(out - data)) <= eb
    if n_tail:
        assert np.array_equal(out[-n_tail:], data[-n_tail:])
    # warm re-decode (memoised index pass) must be indistinguishable
    assert np.array_equal(codec.decompress(blob), out)


ecq_rows = st.lists(
    st.tuples(
        st.integers(2, 13),  # EC_b,max: prefix (≤3) + payload stays ≤ 16 bits
        st.integers(0, 2**32 - 1),
    ),
    min_size=1,
    max_size=8,
)


def _rows_from(spec_rows):
    """Random ECQ rows with per-row EC_b,max-bounded magnitudes."""
    ecqs, ecbs = [], []
    for ecb, seed in spec_rows:
        rng = np.random.default_rng(seed)
        hi = 1 << (ecb - 1)
        row = rng.integers(-hi + 1, hi, size=N)
        row[rng.random(N) < 0.6] = 0  # realistic zero-heavy residuals
        ecqs.append(row)
        ecbs.append(ecb)
    return np.asarray(ecqs, dtype=np.int64), np.asarray(ecbs, dtype=np.int64)


@given(spec_rows=ecq_rows, tree_id=st.sampled_from([1, 2, 3]))
@settings(max_examples=60, deadline=None)
def test_batched_row_encoders_match_per_block(spec_rows, tree_id):
    ecq2d, ecbs = _rows_from(spec_rows)
    codes, lengths = encode_ecq_rows(ecq2d, ecbs, tree_id)
    ref_bits = []
    for row, ecb in zip(ecq2d, ecbs):
        c, l = encode_ecq(row, int(ecb), tree_id)
        ref_bits.append(varlen_bits(c, l))
    ref = np.concatenate(ref_bits)
    assert np.array_equal(varlen_bits(codes, lengths), ref)
    # the fused encode-to-bits path must agree too (int64 and int32 inputs)
    assert np.array_equal(encode_ecq_rows_bits(ecq2d, ecbs, tree_id), ref)
    assert np.array_equal(
        encode_ecq_rows_bits(ecq2d.astype(np.int32), ecbs, tree_id), ref
    )


@given(spec_rows=ecq_rows, tree_id=st.sampled_from([1, 3, 5]))
@settings(max_examples=60, deadline=None)
def test_moment_sizing_matches_exact_count(spec_rows, tree_id):
    ecq2d, ecbs = _rows_from(spec_rows)
    a = np.abs(ecq2d)
    nnz = np.count_nonzero(a, axis=1)
    s = np.minimum(a, 2).sum(axis=1)
    sizes = encoded_size_bits_from_moments(N, nnz, s, ecbs, tree_id)
    for k, (row, ecb) in enumerate(zip(ecq2d, ecbs)):
        assert sizes[k] == encoded_size_bits(row, int(ecb), tree_id)


@given(seed=st.integers(0, 2**32 - 1), n_rows=st.integers(1, 6))
@settings(max_examples=40, deadline=None)
def test_three_leaf_fused_encoder_matches_tree5(seed, n_rows):
    rng = np.random.default_rng(seed)
    ecq2d = rng.integers(-1, 2, size=(n_rows, N))
    codes, lengths = encode_ecq(ecq2d.reshape(-1), 2, 5)
    assert np.array_equal(encode_ecq2_bits(ecq2d), varlen_bits(codes, lengths))
