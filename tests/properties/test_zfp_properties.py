"""Property-based tests for the ZFP transform stack."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.zfp import transform as tf
from repro.zfp.bitplane import decode_block, encode_block

ints60 = st.integers(-(2**60), 2**60)


@given(block=st.tuples(ints60, ints60, ints60, ints60))
@settings(max_examples=200, deadline=None)
def test_lift_inverse_within_ulps(block):
    q = np.array([block], dtype=np.int64)
    back = tf.inv_lift(tf.fwd_lift(q))
    assert np.abs(back - q).max() <= 4


@given(values=hnp.arrays(np.int64, 16, elements=st.integers(-(2**62), 2**62 - 1)))
@settings(max_examples=150, deadline=None)
def test_negabinary_bijection(values):
    assert np.array_equal(tf.from_negabinary(tf.to_negabinary(values)), values)


@given(
    u=st.tuples(*[st.integers(0, 2**62)] * 4),
    maxprec=st.integers(1, 63),
)
@settings(max_examples=200, deadline=None)
def test_plane_coder_reconstructs_kept_planes(u, maxprec):
    top = tf.TOP_PLANE
    payload, nbits = encode_block(u, top, maxprec)
    vals, used = decode_block(payload, nbits, top, maxprec)
    assert used == nbits
    keep = 0
    for k in range(top, top - maxprec, -1):
        keep |= 1 << k
    assert list(vals) == [v & keep for v in u]


@given(
    blocks=hnp.arrays(
        np.float64,
        (6, 4),
        elements=st.floats(-1e8, 1e8, allow_nan=False, allow_infinity=False),
    )
)
@settings(max_examples=100, deadline=None)
def test_fixed_point_bound(blocks):
    e = tf.block_exponents(blocks)
    q = tf.to_fixed_point(blocks, e)
    back = tf.from_fixed_point(q, e)
    step = np.ldexp(1.0, e - tf.SCALE_BITS)
    assert np.all(np.abs(back - blocks) <= 0.5 * step[:, None] + 1e-300)
