"""Service protocol fuzzing: malformed frames must never crash or hang.

A live server is booted once per module; each example opens a raw TCP
socket and throws garbage at it — corrupted magics, lying length fields,
truncated payloads, hostile JSON headers.  The contract (docs/SERVICE.md,
"Failure semantics"): every malformed frame yields either a *structured*
error reply (a valid PSRV frame with ``ok: false``) or a clean disconnect.
The server must remain healthy afterwards — a final round-trip on a fresh
connection proves each example left it serving.
"""

import json
import socket
import struct

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.errors import ProtocolError
from repro.service import ServerConfig, serve_in_thread
from repro.service import protocol

SOCK_TIMEOUT = 10.0


@pytest.fixture(scope="module")
def server():
    handle = serve_in_thread(
        ServerConfig(codec_kwargs={"dims": [1, 1, 2, 2]}, error_bound=1e-10)
    )
    yield handle
    handle.stop()
    telemetry.disable()
    telemetry.reset()


def _send_raw(server, raw: bytes) -> tuple[dict, bytes] | None:
    """Write raw bytes, read at most one frame back.

    Returns the decoded reply frame, or ``None`` for a clean disconnect
    (EOF / connection reset).  Anything else — a hang (socket timeout), an
    unparseable reply — fails the test.
    """
    with socket.create_connection((server.host, server.port), timeout=SOCK_TIMEOUT) as s:
        s.settimeout(SOCK_TIMEOUT)
        try:
            s.sendall(raw)
            s.shutdown(socket.SHUT_WR)  # EOF after our bytes: reply or hang up
            fh = s.makefile("rb")
            return protocol.read_frame(fh)
        except ConnectionError:
            return None
        except ProtocolError as exc:  # pragma: no cover - would be a server bug
            raise AssertionError(f"server sent an unparseable reply: {exc}")


def _assert_contained(server, raw: bytes) -> None:
    reply = _send_raw(server, raw)
    if reply is not None:
        header, _ = reply
        assert header.get("ok") is False, header
        assert header["error"]["code"] in protocol.ERROR_CODES
    # either way the server must still be alive and serving
    health = _send_raw(server, protocol.encode_request("health", 1))
    assert health is not None and health[0]["ok"] is True


FUZZ_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


class TestMalformedFrames:
    @given(junk=st.binary(min_size=0, max_size=64))
    @FUZZ_SETTINGS
    def test_arbitrary_junk(self, server, junk):
        _assert_contained(server, junk)

    @given(magic=st.binary(min_size=4, max_size=4).filter(lambda b: b != protocol.MAGIC))
    @FUZZ_SETTINGS
    def test_bad_magic(self, server, magic):
        frame = protocol.encode_request("health", 1)
        _assert_contained(server, magic + frame[4:])

    @given(declared=st.integers(min_value=protocol.MAX_HEADER_BYTES + 1,
                                max_value=2**32 - 1))
    @FUZZ_SETTINGS
    def test_oversized_declared_header(self, server, declared):
        _assert_contained(server, protocol.MAGIC + struct.pack("<I", declared))

    @given(declared=st.integers(min_value=1 << 31, max_value=(1 << 63) - 1))
    @FUZZ_SETTINGS
    def test_oversized_declared_payload(self, server, declared):
        header = json.dumps({"op": "compress", "id": 1, "params": {}}).encode()
        raw = (protocol.MAGIC + struct.pack("<I", len(header)) + header
               + struct.pack("<Q", declared))
        _assert_contained(server, raw)

    @given(cut=st.integers(min_value=1, max_value=40))
    @FUZZ_SETTINGS
    def test_truncated_frame(self, server, cut):
        frame = protocol.encode_request("compress", 1, {"eb": 1e-10}, b"\x00" * 32)
        _assert_contained(server, frame[:max(0, len(frame) - cut)])

    @given(header=st.binary(min_size=1, max_size=48))
    @FUZZ_SETTINGS
    def test_garbage_header_bytes(self, server, header):
        raw = (protocol.MAGIC + struct.pack("<I", len(header)) + header
               + struct.pack("<Q", 0))
        _assert_contained(server, raw)

    @given(
        op=st.text(max_size=12),
        params=st.dictionaries(
            st.sampled_from(["eb", "dims", "key", "n", "x"]),
            st.one_of(st.none(), st.integers(-5, 5), st.floats(allow_nan=False),
                      st.text(max_size=5), st.lists(st.integers(0, 4), max_size=5)),
            max_size=4,
        ),
        payload=st.binary(max_size=64),
    )
    @FUZZ_SETTINGS
    def test_valid_frame_hostile_contents(self, server, op, params, payload):
        raw = json.dumps({"op": op, "id": 1, "params": params}).encode()
        frame = (protocol.MAGIC + struct.pack("<I", len(raw)) + raw
                 + struct.pack("<Q", len(payload)) + payload)
        _assert_contained(server, frame)

    @given(short_by=st.integers(min_value=1, max_value=31))
    @FUZZ_SETTINGS
    def test_payload_shorter_than_declared(self, server, short_by):
        raw = json.dumps({"op": "decompress", "id": 1, "params": {}}).encode()
        frame = (protocol.MAGIC + struct.pack("<I", len(raw)) + raw
                 + struct.pack("<Q", 32) + b"\x00" * (32 - short_by))
        _assert_contained(server, frame)


def test_server_survives_the_whole_barrage(server):
    """After every fuzz class above ran, the shared server still round-trips."""
    import numpy as np

    from repro.service import ServiceClient

    data = np.linspace(-1.0, 1.0, 32)
    with ServiceClient(server.host, server.port) as c:
        blob, _ = c.compress(data, 1e-10)
        back = c.decompress(blob)
        assert np.max(np.abs(back - data)) <= 1e-10
        # happy path does no per-request allocation: once warm, the same
        # receive buffer (same backing bytearray) serves every response
        backing = c._recv_buf._buf
        for _ in range(5):
            c.decompress(blob)
            c.health()
        assert c._recv_buf._buf is backing
