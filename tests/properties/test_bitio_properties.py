"""Property-based tests for the bitstream substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitio import BitReader, BitWriter

fields = st.lists(
    st.integers(1, 64).flatmap(
        lambda w: st.tuples(st.integers(0, (1 << w) - 1), st.just(w))
    ),
    min_size=1,
    max_size=80,
)


@given(fields=fields)
@settings(max_examples=150, deadline=None)
def test_heterogeneous_field_roundtrip(fields):
    w = BitWriter()
    for value, width in fields:
        w.write_uint(value, width)
    r = BitReader(w.getvalue())
    for value, width in fields:
        assert r.read_uint(width) == value


@given(
    values=st.lists(st.integers(0, 2**20 - 1), min_size=1, max_size=200),
    width=st.integers(20, 64),
)
@settings(max_examples=80, deadline=None)
def test_uint_array_roundtrip(values, width):
    arr = np.array(values, dtype=np.uint64)
    w = BitWriter()
    w.write_uint_array(arr, width)
    assert np.array_equal(BitReader(w.getvalue()).read_uint_array(len(values), width), arr)


@given(st.lists(st.floats(allow_nan=False), min_size=1, max_size=30))
@settings(max_examples=60, deadline=None)
def test_doubles_roundtrip_bit_exact(values):
    w = BitWriter()
    for v in values:
        w.write_double(v)
    r = BitReader(w.getvalue())
    for v in values:
        assert r.read_double() == v


@given(st.binary(min_size=0, max_size=64), st.integers(0, 7))
@settings(max_examples=60, deadline=None)
def test_bytes_roundtrip_at_any_alignment(payload, skew):
    w = BitWriter()
    w.write_uint(0, skew)
    w.write_bytes(payload)
    r = BitReader(w.getvalue())
    r.skip(skew)
    assert r.read_bytes(len(payload)) == payload


@given(st.integers(0, 2**200 - 1))
@settings(max_examples=60, deadline=None)
def test_bigint_roundtrip(value):
    nbits = max(value.bit_length(), 1)
    w = BitWriter()
    w.write_bigint(value, nbits)
    assert w.nbits == nbits
    r = BitReader(w.getvalue())
    got = 0
    for _ in range(nbits):
        got = (got << 1) | r.read_bit()
    assert got == value
