"""Property-based tests for block-structure detection."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PaSTRICompressor
from repro.core.autodetect import detect_block_spec


@given(
    m=st.sampled_from([4, 6, 9, 12]),
    L=st.sampled_from([9, 16, 25, 36, 49]),
    seed=st.integers(0, 50),
)
@settings(max_examples=25, deadline=None)
def test_detector_recovers_planted_period(m, L, seed):
    rng = np.random.default_rng(seed)
    n_blocks = 24
    pat = rng.standard_normal((n_blocks, 1, L))
    s = rng.uniform(-1, 1, (n_blocks, m, 1))
    data = (1e-6 * pat * s * (1 + 1e-4 * rng.standard_normal((n_blocks, m, L)))).ravel()
    res = detect_block_spec(data)
    assert res.confident
    assert res.spec.sb_size == L


@given(seed=st.integers(0, 30), n=st.integers(500, 5000))
@settings(max_examples=20, deadline=None)
def test_detected_spec_always_safe_to_use(seed, n):
    """Whatever the detector returns, compression stays correct."""
    rng = np.random.default_rng(seed)
    data = rng.standard_normal(n) * 10.0 ** rng.integers(-9, 0)
    res = detect_block_spec(data)
    codec = PaSTRICompressor(dims=res.spec.dims)
    out = codec.decompress(codec.compress(data, 1e-10))
    assert np.max(np.abs(out - data)) <= 1e-10
