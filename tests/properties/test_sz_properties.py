"""Property-based tests for the SZ predictor stack."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.sz.predictor import reconstruct, residuals

grids = hnp.arrays(
    np.int64, st.integers(1, 300), elements=st.integers(-(2**55), 2**55)
)


@given(grid=grids, order=st.integers(1, 3))
@settings(max_examples=150, deadline=None)
def test_residual_reconstruct_bijection(grid, order):
    assert np.array_equal(reconstruct(residuals(grid, order), order), grid)


@given(grid=grids, order=st.integers(1, 3))
@settings(max_examples=80, deadline=None)
def test_residuals_do_not_alias_input(grid, order):
    copy = grid.copy()
    residuals(grid, order)
    assert np.array_equal(grid, copy)


@given(
    start=st.integers(-1000, 1000),
    slope=st.integers(-50, 50),
    n=st.integers(3, 200),
)
@settings(max_examples=80, deadline=None)
def test_linear_sequences_have_sparse_order2_residuals(start, slope, n):
    g = start + slope * np.arange(n, dtype=np.int64)
    r = residuals(g, 2)
    assert np.all(r[2:] == 0)
