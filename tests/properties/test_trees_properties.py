"""Property-based tests for the ECQ encoding trees."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitio import BitWriter
from repro.core.trees import TREE_IDS, decode_ecq, encode_ecq, encoded_size_bits


@st.composite
def ecq_streams(draw):
    ecb = draw(st.integers(2, 24))
    hi = (1 << (ecb - 1)) - 1
    n = draw(st.integers(1, 200))
    vals = draw(
        st.lists(st.integers(-hi, hi), min_size=n, max_size=n)
    )
    return np.array(vals, dtype=np.int64), ecb


@given(stream=ecq_streams(), tree=st.sampled_from(TREE_IDS))
@settings(max_examples=150, deadline=None)
def test_roundtrip_identity(stream, tree):
    vals, ecb = stream
    codes, lengths = encode_ecq(vals, ecb, tree)
    w = BitWriter()
    w.write_varlen_array(codes, lengths)
    bits = np.unpackbits(np.frombuffer(w.getvalue(), np.uint8))
    out, end = decode_ecq(bits, 0, vals.size, ecb, tree)
    assert end == int(lengths.sum())
    assert np.array_equal(out, vals)


@given(stream=ecq_streams(), tree=st.sampled_from(TREE_IDS))
@settings(max_examples=80, deadline=None)
def test_size_formula_exact(stream, tree):
    vals, ecb = stream
    _, lengths = encode_ecq(vals, ecb, tree)
    assert int(lengths.sum()) == encoded_size_bits(vals, ecb, tree)


@given(stream=ecq_streams())
@settings(max_examples=80, deadline=None)
def test_tree5_never_loses_to_tree3_or_small_case(stream):
    vals, ecb = stream
    s5 = encoded_size_bits(vals, ecb, 5)
    s3 = encoded_size_bits(vals, ecb, 3)
    assert s5 <= s3  # adaptive tree is at least as good as its base


@given(stream=ecq_streams(), tree=st.sampled_from(TREE_IDS))
@settings(max_examples=50, deadline=None)
def test_zero_is_always_one_bit(stream, tree):
    vals, ecb = stream
    vals = np.zeros_like(vals)
    _, lengths = encode_ecq(vals, ecb, tree)
    assert np.all(lengths == 1)
