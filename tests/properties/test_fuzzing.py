"""Failure injection: decoders must degrade cleanly on corrupt input.

For every codec, flipping bits / truncating / extending a valid stream must
either (a) raise a :class:`repro.errors.ReproError` subclass, or (b) return
*some* float array — never escape with an arbitrary exception.  (A lossy
decoder cannot detect every corruption — there are no checksums, as in the
original SZ/ZFP formats — but it must stay contained.)
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PaSTRICompressor
from repro.errors import ReproError
from repro.lossless import DeflateCodec, FPCCodec
from repro.sz import SZCompressor
from repro.zfp import ZFPCompressor
from tests.conftest import make_patterned_stream


def _codecs():
    return [
        PaSTRICompressor(dims=(2, 2, 3, 3)),
        SZCompressor(capacity=256),
        ZFPCompressor(),
        DeflateCodec(),
        FPCCodec(table_log2=8),
    ]


def _valid_blob(codec, rng):
    data = make_patterned_stream(rng, n_blocks=6, dims=(2, 2, 3, 3))
    return codec.compress(data, 1e-10)


def _attempt(codec, blob):
    try:
        out = codec.decompress(bytes(blob))
    except ReproError:
        return  # clean, typed failure
    assert isinstance(out, np.ndarray)
    assert out.dtype == np.float64


@given(
    codec_idx=st.integers(0, 4),
    positions=st.lists(st.integers(0, 10_000), min_size=1, max_size=8),
    seed=st.integers(0, 3),
)
@settings(max_examples=120, deadline=None)
def test_bit_flips_contained(codec_idx, positions, seed):
    rng = np.random.default_rng(seed)
    codec = _codecs()[codec_idx]
    blob = bytearray(_valid_blob(codec, rng))
    for p in positions:
        byte = (p // 8) % len(blob)
        blob[byte] ^= 1 << (p % 8)
    _attempt(codec, blob)


@given(codec_idx=st.integers(0, 4), cut=st.floats(0.01, 0.99), seed=st.integers(0, 3))
@settings(max_examples=80, deadline=None)
def test_truncation_contained(codec_idx, cut, seed):
    rng = np.random.default_rng(seed)
    codec = _codecs()[codec_idx]
    blob = _valid_blob(codec, rng)
    _attempt(codec, blob[: max(1, int(len(blob) * cut))])


@given(codec_idx=st.integers(0, 4), junk=st.binary(min_size=1, max_size=64), seed=st.integers(0, 3))
@settings(max_examples=60, deadline=None)
def test_trailing_junk_contained(codec_idx, junk, seed):
    rng = np.random.default_rng(seed)
    codec = _codecs()[codec_idx]
    blob = _valid_blob(codec, rng)
    _attempt(codec, blob + junk)


@given(codec_idx=st.integers(0, 4), junk=st.binary(min_size=8, max_size=256))
@settings(max_examples=80, deadline=None)
def test_pure_garbage_contained(codec_idx, junk):
    codec = _codecs()[codec_idx]
    _attempt(codec, junk)
