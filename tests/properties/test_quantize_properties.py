"""Property-based tests for the PaSTRI quantization calculus."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import quantize as qz
from repro.core.scaling import ScalingMetric, fit_pattern

finite = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False)


@given(
    block=hnp.arrays(np.float64, (5, 8), elements=finite),
    eb=st.sampled_from([1e-9, 1e-6, 1e-3]),
    metric=st.sampled_from(list(ScalingMetric)),
)
@settings(max_examples=150, deadline=None)
def test_full_quantization_respects_bound(block, eb, metric):
    """Pattern fit + quantization + EC reconstructs within EB.

    Domain restricted to ``max|x|/EB < 2^MAX_FIELD_BITS`` — beyond it
    ``quantize_block``'s documented precondition fails and the compressor's
    raw fallback (tested in test_codec_roundtrip) takes over.
    """
    fit = fit_pattern(block, metric)
    q = qz.quantize_block(block, fit.pattern, fit.scales, eb)
    approx = qz.reconstruct_block(q.pq, q.sq, eb, q.s_b)
    recon = qz.apply_error_correction(approx, q.ecq, eb)
    assert np.max(np.abs(recon - block)) <= eb


@given(values=hnp.arrays(np.int64, st.integers(1, 100), elements=st.integers(-(2**40), 2**40)))
@settings(max_examples=100, deadline=None)
def test_bin_numbers_define_minimal_widths(values):
    bins = qz.ecq_bin_numbers(values)
    # every value fits its bin's signed range and not the next smaller one
    for v, b in zip(values, bins):
        hi = (1 << (b - 1)) - 1
        assert -hi <= v <= hi or (b == 1 and v == 0)
        if b > 1:
            smaller_hi = (1 << (b - 2)) - 1
            assert abs(v) > smaller_hi


@given(ext=st.integers(0, 2**50))
@settings(max_examples=100, deadline=None)
def test_symmetric_range_width_minimal(ext):
    b = qz.bits_for_symmetric_range(ext)
    assert ext <= (1 << (b - 1)) - 1
    if b > 1:
        assert ext > (1 << (b - 2)) - 1
