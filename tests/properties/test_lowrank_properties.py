"""Hypothesis properties of the low-rank codec's residual pass.

The codec's one hard promise: **whatever** the batch, the rank, the
factorization method, or the (abs- or rel-resolved) error bound, the
decoded stream satisfies ``|x - x̂| <= EB`` element-wise.  Rank selection
and factorization quality may only move bytes.  Degenerate inputs — an
all-zero body, or a pinned rank at/above ``min(n_blocks, block_size)``
where factoring cannot pay — must round-trip *exactly*.
"""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.api import resolve_error_bound
from repro.lowrank import LowRankCompressor
from repro.lowrank import format as fmt

DIMS = (2, 2, 3, 3)
BLOCK = 36

finite_doubles = st.floats(
    min_value=-1e12, max_value=1e12, allow_nan=False, allow_infinity=False
)

#: Whole streams: anything from a sub-block tail fragment to ~16 blocks.
streams = hnp.arrays(np.float64, st.integers(1, 600), elements=finite_doubles)

error_bounds = st.sampled_from([1e-13, 1e-10, 1e-7, 1e-4, 1e-1])

#: 0 = adaptive; larger pins, deliberately sampling past full rank.
ranks = st.sampled_from([0, 1, 2, 3, 5, 8, 40])


@given(data=streams, eb=error_bounds, rank=ranks)
@settings(max_examples=60, deadline=None)
def test_svd_pointwise_bound(data, eb, rank):
    codec = LowRankCompressor(dims=DIMS, rank=rank)
    out = codec.decompress(codec.compress(data, eb))
    assert out.size == data.size
    assert np.max(np.abs(out - data)) <= eb


@given(data=streams, eb=error_bounds, rank=ranks)
@settings(max_examples=25, deadline=None)
def test_cp_pointwise_bound(data, eb, rank):
    codec = LowRankCompressor(dims=DIMS, method="cp", rank=rank)
    out = codec.decompress(codec.compress(data, eb))
    assert out.size == data.size
    assert np.max(np.abs(out - data)) <= eb


@given(data=streams, rel=st.sampled_from([1e-9, 1e-6, 1e-3]))
@settings(max_examples=40, deadline=None)
def test_relative_bound_mode(data, rel):
    assume(float(data.max() - data.min()) > 0)
    eb = resolve_error_bound(data, rel, "rel")
    codec = LowRankCompressor(dims=DIMS)
    out = codec.decompress(codec.compress(data, eb))
    assert np.max(np.abs(out - data)) <= rel * (data.max() - data.min())


@given(n=st.integers(1, 600), eb=error_bounds)
@settings(max_examples=30, deadline=None)
def test_zero_stream_roundtrips_exactly(n, eb):
    data = np.zeros(n)
    codec = LowRankCompressor(dims=DIMS)
    blob = codec.compress(data, eb)
    np.testing.assert_array_equal(codec.decompress(blob), data)
    assert fmt.parse_blob(blob).rank == 0


@given(data=streams, eb=error_bounds)
@settings(max_examples=40, deadline=None)
def test_full_rank_pin_roundtrips_exactly(data, eb):
    n_blocks = data.size // BLOCK
    full = min(n_blocks, BLOCK)
    codec = LowRankCompressor(dims=DIMS, rank=max(full, 1))
    out = codec.decompress(codec.compress(data, eb))
    np.testing.assert_array_equal(out, data)


@given(data=streams, eb=error_bounds, rank=ranks)
@settings(max_examples=30, deadline=None)
def test_blob_is_self_describing(data, eb, rank):
    # any instance decodes any blob — geometry travels in the header
    blob = LowRankCompressor(dims=DIMS, rank=rank).compress(data, eb)
    foreign = LowRankCompressor(dims=(6, 6, 6, 6))
    out = foreign.decompress(blob)
    assert np.max(np.abs(out - data)) <= eb


@given(
    data=hnp.arrays(np.float64, st.integers(BLOCK, 300), elements=finite_doubles),
    eb=error_bounds,
)
@settings(max_examples=30, deadline=None)
def test_tail_fragment_is_exact(data, eb):
    # elements past the last whole block are stored verbatim
    n_tail = data.size % BLOCK
    assume(n_tail > 0)
    codec = LowRankCompressor(dims=DIMS)
    out = codec.decompress(codec.compress(data, eb))
    np.testing.assert_array_equal(out[-n_tail:], data[-n_tail:])
