"""Property-based tests: the error-bound contract of every codec.

The single most important invariant in this package: for any finite input
and any positive error bound, ``max |x - decompress(compress(x))| <= EB``
— and the lossless codecs reconstruct exactly.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import PaSTRICompressor
from repro.lossless import DeflateCodec, FPCCodec
from repro.sz import SZCompressor
from repro.zfp import ZFPCompressor

finite_doubles = st.floats(
    min_value=-1e12, max_value=1e12, allow_nan=False, allow_infinity=False
)

arrays = hnp.arrays(np.float64, st.integers(1, 600), elements=finite_doubles)
error_bounds = st.sampled_from([1e-13, 1e-10, 1e-7, 1e-4, 1e-1])


@given(data=arrays, eb=error_bounds)
@settings(max_examples=60, deadline=None)
def test_pastri_error_bound(data, eb):
    codec = PaSTRICompressor(dims=(2, 2, 3, 3))
    out = codec.decompress(codec.compress(data, eb))
    assert out.size == data.size
    assert np.max(np.abs(out - data)) <= eb


@given(data=arrays, eb=error_bounds)
@settings(max_examples=60, deadline=None)
def test_sz_error_bound(data, eb):
    codec = SZCompressor(capacity=256)
    out = codec.decompress(codec.compress(data, eb))
    assert np.max(np.abs(out - data)) <= eb


@given(data=hnp.arrays(np.float64, st.integers(1, 200), elements=finite_doubles), eb=error_bounds)
@settings(max_examples=40, deadline=None)
def test_zfp_error_bound(data, eb):
    codec = ZFPCompressor()
    out = codec.decompress(codec.compress(data, eb))
    assert np.max(np.abs(out - data)) <= eb


@given(data=hnp.arrays(np.float64, st.integers(1, 300), elements=finite_doubles))
@settings(max_examples=30, deadline=None)
def test_deflate_is_lossless(data):
    codec = DeflateCodec()
    assert np.array_equal(codec.decompress(codec.compress(data)), data)


@given(data=hnp.arrays(np.float64, st.integers(1, 150), elements=finite_doubles))
@settings(max_examples=20, deadline=None)
def test_fpc_is_lossless(data):
    codec = FPCCodec(table_log2=8)
    assert np.array_equal(codec.decompress(codec.compress(data)), data)


@given(
    scales=hnp.arrays(np.float64, 4, elements=st.floats(-1, 1)),
    pattern=hnp.arrays(np.float64, 9, elements=st.floats(-1e-6, 1e-6)),
    eb=st.sampled_from([1e-12, 1e-10, 1e-8]),
)
@settings(max_examples=60, deadline=None)
def test_pastri_on_exact_scaled_patterns(scales, pattern, eb):
    """Perfectly scalable blocks must honour the bound and compress well."""
    block = np.outer(scales, pattern).ravel()
    codec = PaSTRICompressor(dims=(2, 2, 3, 3))
    blob = codec.compress(block, eb)
    out = codec.decompress(blob)
    assert np.max(np.abs(out - block)) <= eb
