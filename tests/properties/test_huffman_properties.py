"""Property-based tests for canonical Huffman coding."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitio import BitReader, BitWriter
from repro.sz.huffman import HuffmanCode, code_lengths


@st.composite
def symbol_streams(draw):
    alphabet = draw(st.integers(1, 500))
    n = draw(st.integers(1, 400))
    symbols = draw(st.lists(st.integers(0, alphabet - 1), min_size=n, max_size=n))
    return np.array(symbols, dtype=np.int64), alphabet


@given(stream=symbol_streams())
@settings(max_examples=120, deadline=None)
def test_encode_decode_identity(stream):
    symbols, alphabet = stream
    freqs = np.bincount(symbols, minlength=alphabet)
    code = HuffmanCode.from_frequencies(freqs)
    w = BitWriter()
    nbits = code.encode(w, symbols)
    bits = np.unpackbits(np.frombuffer(w.getvalue(), np.uint8))
    out, end = code.decode(bits, 0, symbols.size, payload_bits=nbits)
    assert end == nbits
    assert np.array_equal(out, symbols)


@given(stream=symbol_streams())
@settings(max_examples=80, deadline=None)
def test_kraft_and_compactness(stream):
    symbols, alphabet = stream
    freqs = np.bincount(symbols, minlength=alphabet)
    lengths = code_lengths(freqs)
    present = lengths[freqs > 0]
    assert np.all(present > 0)
    assert np.sum(2.0 ** -present.astype(float)) <= 1.0 + 1e-12
    # a prefix code can never beat the entropy bound
    p = freqs[freqs > 0] / symbols.size
    entropy = -(p * np.log2(p)).sum()
    avg_len = (freqs[freqs > 0] * present).sum() / symbols.size
    assert avg_len >= entropy - 1e-9


@given(stream=symbol_streams())
@settings(max_examples=60, deadline=None)
def test_table_serialisation_identity(stream):
    symbols, alphabet = stream
    code = HuffmanCode.from_frequencies(np.bincount(symbols, minlength=alphabet))
    w = BitWriter()
    code.write_table(w)
    got = HuffmanCode.read_table(BitReader(w.getvalue()))
    assert np.array_equal(got.lengths, code.lengths)
    assert np.array_equal(got.codes, code.codes)
