"""Property tests for the telemetry invariants (PR 3).

Two invariants hold by construction and must survive any call pattern:

* For same-process spans, the children's wall times sum to at most the
  parent's wall time (clock monotonicity; grafted *worker* spans are
  exempt because they ran concurrently — see docs/OBSERVABILITY.md).
* ``codec.<name>.compress.bytes_in`` equals the exact total of input
  ``nbytes`` pushed through the instrumented codec, whatever the mix of
  array sizes.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.api import get_codec
from repro.telemetry import REGISTRY, trace

#: float tolerance for wall-time sums (perf_counter deltas are exact
#: doubles, but summing many of them can round in the last bit)
WALL_TOL = 1e-9

span_trees = st.recursive(
    st.just([]), lambda kids: st.lists(kids, max_size=3), max_leaves=12
)


def _run_tree(spec) -> None:
    with trace("node"):
        for sub in spec:
            _run_tree(sub)


def _check_wall_invariant(sp) -> None:
    child_sum = sum(c.wall_s for c in sp.children)
    assert child_sum <= sp.wall_s + WALL_TOL, (
        f"children wall {child_sum} exceeds parent {sp.wall_s} at {sp.name}"
    )
    for c in sp.children:
        _check_wall_invariant(c)


@given(span_trees)
@settings(max_examples=40, deadline=None)
def test_child_wall_sum_never_exceeds_parent(spec):
    telemetry.enable()
    telemetry.reset()
    try:
        with trace("root") as root:
            for sub in spec:
                _run_tree(sub)
        _check_wall_invariant(root)
    finally:
        telemetry.disable()
        telemetry.reset()


@given(
    st.lists(
        st.lists(
            st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
            min_size=1,
            max_size=64,
        ),
        min_size=1,
        max_size=4,
    )
)
@settings(max_examples=25, deadline=None)
def test_compress_bytes_in_equals_actual_input_nbytes(chunks):
    telemetry.enable()
    telemetry.reset()
    try:
        codec = get_codec("deflate")
        expected_in = 0
        expected_out = 0
        for values in chunks:
            arr = np.asarray(values, dtype=np.float64)
            blob = codec.compress(arr, 0.0)
            expected_in += arr.nbytes
            expected_out += len(blob)
        assert (
            REGISTRY.counter("codec.deflate.compress.bytes_in").value == expected_in
        )
        assert (
            REGISTRY.counter("codec.deflate.compress.bytes_out").value == expected_out
        )
        assert REGISTRY.timer("codec.deflate.compress").count == len(chunks)
    finally:
        telemetry.disable()
        telemetry.reset()
