"""Property tests: arbitrary chunk streams round-trip through a container.

For every registered codec, any sequence of finite chunks written through
:class:`ContainerWriter` must come back within the error bound — through
both the sequential path (``decompress_stream``) and the indexed path
(``open_container`` with *no codec arguments*, exercising the embedded
codec spec and the per-frame CRCs on every example).
"""

import io

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro import api
from repro.streamio import compress_stream, decompress_stream, open_container, read_stream_header

EB = 1e-9
LOSSLESS = {"deflate", "fpc"}
#: Constructor kwargs that keep the property examples small and fast.
CODEC_KWARGS = {
    "pastri": {"dims": (2, 2, 3, 3)},
    "sz": {"capacity": 256},
    "lowrank": {"dims": (2, 2, 3, 3)},
}

finite_doubles = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)
chunk = hnp.arrays(np.float64, st.integers(1, 120), elements=finite_doubles)
chunk_streams = st.lists(chunk, min_size=0, max_size=4)


def check_roundtrip(name: str, chunks: list[np.ndarray]) -> None:
    codec = api.get_codec(name, **CODEC_KWARGS.get(name, {}))
    buf = io.BytesIO()
    compress_stream(chunks, codec, EB, buf)

    tol = 0.0 if name in LOSSLESS else EB

    buf.seek(0)
    assert read_stream_header(buf) == name
    seq = list(decompress_stream(buf, api.get_codec(name, **CODEC_KWARGS.get(name, {}))))
    assert len(seq) == len(chunks)
    for got, want in zip(seq, chunks):
        assert got.size == want.size
        assert np.all(np.abs(got - want) <= tol)

    buf.seek(0)
    r = open_container(buf)  # codec rebuilt from the embedded spec
    assert len(r) == len(chunks)
    for i, want in enumerate(chunks):
        got = r.read_frame(i)
        assert got.size == want.size
        assert np.all(np.abs(got - want) <= tol)


@given(chunks=chunk_streams)
@settings(max_examples=25, deadline=None)
def test_pastri_container_roundtrip(chunks):
    check_roundtrip("pastri", chunks)


@given(chunks=chunk_streams)
@settings(max_examples=25, deadline=None)
def test_sz_container_roundtrip(chunks):
    check_roundtrip("sz", chunks)


@given(chunks=chunk_streams)
@settings(max_examples=15, deadline=None)
def test_zfp_container_roundtrip(chunks):
    check_roundtrip("zfp", chunks)


@given(chunks=chunk_streams)
@settings(max_examples=15, deadline=None)
def test_deflate_container_roundtrip(chunks):
    check_roundtrip("deflate", chunks)


@given(chunks=chunk_streams)
@settings(max_examples=10, deadline=None)
def test_fpc_container_roundtrip(chunks):
    check_roundtrip("fpc", chunks)


@given(chunks=chunk_streams)
@settings(max_examples=15, deadline=None)
def test_lowrank_container_roundtrip(chunks):
    check_roundtrip("lowrank", chunks)


def test_every_registered_codec_is_covered():
    """Fail loudly if a codec is registered without a round-trip property."""
    covered = {"pastri", "sz", "zfp", "deflate", "fpc", "lowrank"}
    # other test modules register throwaway codecs under *-test names
    registered = {n for n in api.available_codecs() if not n.endswith("-test")}
    assert registered == covered
