"""Unit tests for the five pattern-scaling metrics (repro.core.scaling)."""

import numpy as np
import pytest

from repro.core.scaling import (
    PatternFit,
    ScalingMetric,
    fit_pattern,
    fit_pattern_batch,
    metric_cost_rank,
)


def exact_block(rng, M=6, L=9):
    """A perfectly scalable block: outer(s, p)."""
    p = rng.standard_normal(L)
    s = rng.uniform(-1, 1, M)
    s[2] = 1.0  # ensure the pattern row itself has the extremum
    p *= 2.0 / np.abs(p).max()
    return np.outer(s, p), s


@pytest.mark.parametrize("metric", list(ScalingMetric))
def test_scales_bounded_by_one(metric, rng):
    block = rng.standard_normal((8, 12))
    fit = fit_pattern(block, metric)
    assert np.all(np.abs(fit.scales) <= 1.0)


@pytest.mark.parametrize("metric", list(ScalingMetric))
def test_exact_outer_product_recovered(metric, rng):
    block, s = exact_block(rng)
    fit = fit_pattern(block, metric)
    approx = np.outer(fit.scales, fit.pattern)
    assert np.allclose(approx, block, atol=1e-12 * np.abs(block).max())


def test_er_picks_the_extremum_subblock(rng):
    block = rng.standard_normal((5, 7))
    block[3, 2] = 100.0
    fit = fit_pattern(block, ScalingMetric.ER)
    assert fit.pattern_index == 3
    assert fit.scales[3] == 1.0


def test_fr_picks_largest_first_element():
    block = np.array([[1.0, 5.0], [-3.0, 0.1], [2.0, 2.0]])
    fit = fit_pattern(block, ScalingMetric.FR)
    assert fit.pattern_index == 1
    assert np.allclose(fit.scales, [1.0 / -3.0, 1.0, 2.0 / -3.0])


def test_fr_degenerates_on_zero_firsts():
    block = np.array([[0.0, 5.0], [0.0, 1.0]])
    fit = fit_pattern(block, ScalingMetric.FR)
    assert fit.degenerate
    assert fit.scales[fit.pattern_index] == 1.0


def test_ar_uses_signed_means():
    block = np.array([[1.0, 1.0], [-4.0, -4.0], [2.0, 2.0]])
    fit = fit_pattern(block, ScalingMetric.AR)
    assert fit.pattern_index == 1
    assert np.allclose(fit.scales, [-0.25, 1.0, -0.5])


def test_aar_applies_sign_correction():
    p = np.array([3.0, -1.0, 2.0])
    block = np.vstack([p, -0.5 * p])
    fit = fit_pattern(block, ScalingMetric.AAR)
    # second row is anti-correlated: coefficient must be negative
    assert fit.scales[1] == pytest.approx(-0.5)


def test_is_uses_value_range():
    block = np.array([[0.0, 10.0], [5.0, 6.0]])
    fit = fit_pattern(block, ScalingMetric.IS)
    assert fit.pattern_index == 0
    assert fit.scales[1] == pytest.approx(0.1)


def test_zero_block_degenerate_for_every_metric():
    block = np.zeros((4, 5))
    for metric in ScalingMetric:
        fit = fit_pattern(block, metric)
        assert fit.degenerate


@pytest.mark.parametrize("metric", list(ScalingMetric))
def test_batch_matches_single_block_fits(metric, rng):
    blocks = rng.standard_normal((12, 6, 9)) * np.exp(
        rng.uniform(-8, 2, (12, 1, 1))
    )
    p_idx, scales, degenerate = fit_pattern_batch(blocks, metric)
    for b in range(12):
        fit = fit_pattern(blocks[b], metric)
        assert p_idx[b] == fit.pattern_index
        assert np.allclose(scales[b], fit.scales)
        assert degenerate[b] == fit.degenerate


def test_batch_flags_degenerate_rows(rng):
    blocks = rng.standard_normal((3, 4, 5))
    blocks[1] = 0.0
    _, scales, degenerate = fit_pattern_batch(blocks, ScalingMetric.ER)
    assert degenerate.tolist() == [False, True, False]
    assert np.count_nonzero(scales[1]) == 1  # only the pattern's own 1.0


def test_metric_coercion_from_string():
    assert ScalingMetric.coerce("ER") is ScalingMetric.ER
    assert ScalingMetric.coerce(ScalingMetric.IS) is ScalingMetric.IS
    with pytest.raises(ValueError):
        ScalingMetric.coerce("nope")


def test_cost_rank_starts_with_er():
    assert metric_cost_rank()[0] is ScalingMetric.ER


def test_fit_returns_view_not_copy(rng):
    block = rng.standard_normal((3, 4))
    fit = fit_pattern(block, ScalingMetric.ER)
    assert isinstance(fit, PatternFit)
    assert np.shares_memory(fit.pattern, block)
