"""Unit tests for block-type classification (repro.core.classify)."""

import pytest

from repro.core.classify import TYPE2_MAX_ECB, BlockType


@pytest.mark.parametrize(
    "ecb,expected",
    [
        (0, BlockType.TYPE0),
        (1, BlockType.TYPE0),
        (2, BlockType.TYPE1),
        (3, BlockType.TYPE2),
        (6, BlockType.TYPE2),
        (7, BlockType.TYPE3),
        (22, BlockType.TYPE3),
    ],
)
def test_from_ec_b_max(ecb, expected):
    assert BlockType.from_ec_b_max(ecb) is expected


def test_type_boundary_constant():
    assert TYPE2_MAX_ECB == 6
    assert BlockType.from_ec_b_max(TYPE2_MAX_ECB) is BlockType.TYPE2
    assert BlockType.from_ec_b_max(TYPE2_MAX_ECB + 1) is BlockType.TYPE3


def test_types_are_ordered_ints():
    assert list(BlockType) == sorted(BlockType)
    assert int(BlockType.TYPE3) == 3
