"""Golden-stream tests: the on-disk formats must not drift accidentally.

A deterministic input compressed with fixed settings must produce a
byte-identical stream across code changes; any intentional format change
must bump the version constants and update these digests.
"""

import hashlib

import numpy as np

from repro.core import PaSTRICompressor, ScalingMetric
from repro.sz import SZCompressor
from repro.zfp import ZFPCompressor


def deterministic_stream() -> np.ndarray:
    rng = np.random.default_rng(20180924)  # CLUSTER'18 vintage
    pat = rng.standard_normal((4, 1, 36))
    s = rng.uniform(-1, 1, (4, 36, 1))
    blocks = 1e-7 * pat * s * (1 + 1e-3 * rng.standard_normal((4, 36, 36)))
    blocks[0] = 0.0
    return blocks.reshape(-1)


def digest(blob: bytes) -> str:
    return hashlib.sha256(blob).hexdigest()[:16]


def test_pastri_stream_digest():
    data = deterministic_stream()
    blob = PaSTRICompressor(dims=(6, 6, 6, 6)).compress(data, 1e-10)
    assert digest(blob) == "33b4883951d526c5"


def test_pastri_stream_digest_tree1_aar():
    data = deterministic_stream()
    blob = PaSTRICompressor(
        dims=(6, 6, 6, 6), metric=ScalingMetric.AAR, tree_id=1
    ).compress(data, 1e-9)
    assert digest(blob) == "963eb2099d1ea2f0"


def test_sz_stream_digest():
    blob = SZCompressor().compress(deterministic_stream(), 1e-10)
    assert digest(blob) == "91f7948284be6703"


def test_zfp_stream_digest():
    blob = ZFPCompressor().compress(deterministic_stream(), 1e-10)
    assert digest(blob) == "e488759fd694ddda"


def test_decompression_of_golden_streams_unchanged():
    """Numeric output digests, not just stream bytes."""
    data = deterministic_stream()
    out = PaSTRICompressor(dims=(6, 6, 6, 6)).decompress(
        PaSTRICompressor(dims=(6, 6, 6, 6)).compress(data, 1e-10)
    )
    assert digest(out.tobytes()) == "4293f9897a4c59f6"
