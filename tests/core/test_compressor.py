"""Unit + integration tests for the PaSTRI compressor."""

import numpy as np
import pytest

from repro.core import BlockType, PaSTRICompressor, ScalingMetric
from repro.errors import FormatError, ParameterError
from tests.conftest import make_patterned_stream

DIMS = (6, 6, 6, 6)
EB = 1e-10


def codec(**kw) -> PaSTRICompressor:
    kw.setdefault("dims", DIMS)
    return PaSTRICompressor(**kw)


def test_roundtrip_respects_error_bound(patterned_stream):
    c = codec()
    out = c.decompress(c.compress(patterned_stream, EB))
    assert np.max(np.abs(out - patterned_stream)) <= EB


def test_patterned_data_compresses_well(patterned_stream):
    blob = codec().compress(patterned_stream, EB)
    assert patterned_stream.nbytes / len(blob) > 10


def test_constructor_requires_exactly_one_geometry_source():
    with pytest.raises(ParameterError):
        PaSTRICompressor()
    with pytest.raises(ParameterError):
        PaSTRICompressor(dims=DIMS, config="(dd|dd)")
    assert PaSTRICompressor(config="(dd|dd)").spec.dims == DIMS


def test_config_and_dims_agree(patterned_stream):
    b1 = PaSTRICompressor(dims=DIMS).compress(patterned_stream, EB)
    b2 = PaSTRICompressor(config="(dd|dd)").compress(patterned_stream, EB)
    assert b1 == b2


@pytest.mark.parametrize("metric", list(ScalingMetric))
@pytest.mark.parametrize("tree", [1, 2, 3, 4, 5])
def test_all_metric_tree_combinations_roundtrip(metric, tree, rng):
    data = make_patterned_stream(rng, n_blocks=6)
    c = codec(metric=metric, tree_id=tree)
    out = c.decompress(c.compress(data, EB))
    assert np.max(np.abs(out - data)) <= EB


def test_zero_stream_collapses_to_header_bits():
    data = np.zeros(DIMS[0] ** 4 // 6 * 6 * 4)
    blob = codec().compress(data, EB)
    # each zero block costs 2 bits; the stream is essentially the header
    assert len(blob) < 64
    assert np.array_equal(codec().decompress(blob), data)


def test_tail_elements_stored_exactly(rng):
    data = np.concatenate([make_patterned_stream(rng, n_blocks=2), rng.standard_normal(17)])
    c = codec()
    out = c.decompress(c.compress(data, EB))
    # tail is verbatim: exact equality
    assert np.array_equal(out[-17:], data[-17:])


def test_stream_shorter_than_one_block_is_all_tail(rng):
    data = rng.standard_normal(100)
    out = codec().decompress(codec().compress(data, EB))
    assert np.array_equal(out, data)


def test_incompressible_data_falls_back_to_raw(rng):
    data = rng.standard_normal(DIMS[0] ** 4 // 6 * 6 * 3) * 1e6
    c = codec(collect_stats=True)
    blob = c.compress(data, 1e-12)
    assert np.max(np.abs(c.decompress(blob) - data)) <= 1e-12
    # raw fallback: about 1.0x, never significantly worse
    assert len(blob) <= data.nbytes * 1.01
    assert c.last_stats.kind_counts[2] > 0  # KIND_RAW


def test_extreme_magnitudes_with_tiny_bound(rng):
    data = rng.standard_normal(1296 * 2) * 1e25
    c = codec()
    out = c.decompress(c.compress(data, 1e-12))
    assert np.max(np.abs(out - data)) <= 1e-12


def test_huge_error_bound_gives_type0_blocks(patterned_stream):
    c = codec(collect_stats=True)
    blob = c.compress(patterned_stream, 1.0)
    st = c.last_stats
    assert st.type_counts.get(BlockType.TYPE0, 0) + st.kind_counts.get(0, 0) > 0
    assert np.max(np.abs(c.decompress(blob) - patterned_stream)) <= 1.0


def test_stats_bit_accounting_matches_blob_size(patterned_stream):
    c = codec(collect_stats=True)
    blob = c.compress(patterned_stream, EB)
    st = c.last_stats
    assert st.bits_total <= 8 * len(blob) < st.bits_total + 8  # byte padding only


def test_stats_none_when_not_collected(patterned_stream):
    c = codec()
    c.compress(patterned_stream, EB)
    assert c.last_stats is None


def test_decompress_rejects_garbage():
    with pytest.raises(FormatError):
        codec().decompress(b"not a pastri stream at all")


def test_decompress_rejects_truncated_stream(patterned_stream):
    blob = codec().compress(patterned_stream, EB)
    with pytest.raises(FormatError):
        codec().decompress(blob[: len(blob) // 2])


def test_compress_rejects_nan():
    data = np.full(100, np.nan)
    with pytest.raises(ParameterError):
        codec().compress(data, EB)


def test_compress_rejects_bad_error_bound(patterned_stream):
    for bad in (0.0, -1e-10, np.inf):
        with pytest.raises(ParameterError):
            codec().compress(patterned_stream, bad)


def test_bad_tree_id_rejected():
    with pytest.raises(ParameterError):
        codec(tree_id=9)


def test_decompression_is_deterministic(patterned_stream):
    c = codec()
    blob = c.compress(patterned_stream, EB)
    assert np.array_equal(c.decompress(blob), c.decompress(blob))


def test_sparse_representation_used_for_rare_outliers(rng):
    # near-perfect pattern + a couple of huge outliers -> sparse ECQ wins
    data = make_patterned_stream(rng, n_blocks=4, rel_dev=0.0, zero_blocks=0)
    data = data.copy()
    data[5] += 1e-6
    data[700] -= 2e-6
    c = codec(collect_stats=True)
    blob = c.compress(data, EB)
    assert np.max(np.abs(c.decompress(blob) - data)) <= EB


def test_decompressed_dtype_and_length(patterned_stream):
    out = codec().decompress(codec().compress(patterned_stream, EB))
    assert out.dtype == np.float64
    assert out.size == patterned_stream.size


def test_real_eri_dataset_roundtrip(tiny_eri_dataset):
    ds = tiny_eri_dataset
    c = PaSTRICompressor(dims=ds.spec.dims)
    for eb in (1e-9, 1e-10, 1e-11):
        out = c.decompress(c.compress(ds.data, eb))
        assert np.max(np.abs(out - ds.data)) <= eb


# -- corrupt sparse-ECQ streams ---------------------------------------------
#
# The compressor emits sparse outlier entries in flatnonzero order, so a
# valid stream's indices are strictly increasing within a block.  The
# decompressor scatter-adds them; without validation a corrupt stream with a
# duplicated index would be folded silently instead of rejected.


def _sparse_stream(entries):
    """A 1-block stream whose ECQ is sparse with the given (index, value) list."""
    from repro.bitio import BitWriter
    from repro.core import header as fmt
    from repro.core.blocking import BlockSpec

    spec = BlockSpec(DIMS)
    w = BitWriter()
    fmt.write_header(
        w,
        fmt.StreamHeader(
            error_bound=EB, spec=spec, n_blocks=1, n_tail=0,
            tree_id=5, metric=ScalingMetric.ER,
        ),
    )
    w.write_uint(fmt.KIND_PATTERNED, 2)
    w.write_uint(1, 6)  # P_b = 1
    for _ in range(spec.sb_size + spec.num_sb):
        w.write_uint(1, 1)  # PQ/SQ values 0, offset-binary
    w.write_uint(2, 6)  # EC_b,max
    w.write_uint(1, 1)  # sparse flag
    w.write_uint(len(entries), spec.block_size.bit_length())
    idx_bits = (spec.block_size - 1).bit_length()
    for idx, val in entries:
        w.write_uint((idx << 2) | (val + 2), idx_bits + 2)
    return w.getvalue()


def test_sparse_increasing_indices_accepted():
    out = codec().decompress(_sparse_stream([(3, 1), (7, -1)]))
    assert out.size == DIMS[0] ** 4
    assert out[3] > 0 and out[7] < 0


def test_sparse_duplicate_index_rejected():
    with pytest.raises(FormatError, match="strictly increasing"):
        codec().decompress(_sparse_stream([(5, 1), (5, 1)]))


def test_sparse_decreasing_index_rejected():
    with pytest.raises(FormatError, match="strictly increasing"):
        codec().decompress(_sparse_stream([(7, 1), (3, -1)]))


def test_sparse_out_of_range_index_rejected():
    with pytest.raises(FormatError, match="out of range"):
        codec().decompress(_sparse_stream([(1500, 1)]))
