"""Unit tests for the §IV-B quantization calculus (repro.core.quantize)."""

import numpy as np
import pytest

from repro.core import quantize as qz
from repro.errors import ParameterError


@pytest.mark.parametrize(
    "ext,bits",
    [(0, 1), (1, 2), (2, 3), (3, 3), (4, 4), (7, 4), (8, 5), (511, 10), (512, 11)],
)
def test_bits_for_symmetric_range(ext, bits):
    b = qz.bits_for_symmetric_range(ext)
    assert b == bits
    # The claimed property: [-ext, ext] fits a b-bit two's-complement field.
    assert -(1 << (b - 1)) <= -ext and ext <= (1 << (b - 1)) - 1


def test_bits_for_symmetric_range_rejects_negative():
    with pytest.raises(ParameterError):
        qz.bits_for_symmetric_range(-1)


def test_pattern_quantization_error_at_most_eb(rng):
    eb = 1e-10
    pattern = rng.standard_normal(64) * 1e-7
    pq, p_b = qz.quantize_pattern(pattern, eb)
    back = qz.dequantize_pattern(pq, eb)
    assert np.max(np.abs(back - pattern)) <= eb
    assert int(np.abs(pq).max()) <= (1 << (p_b - 1)) - 1


def test_pattern_bits_match_paper_example():
    # §IV-B: P in [-1e-7, 1e-7] at EB=1e-10 needs ~10 bits.
    pattern = np.array([1e-7, -1e-7, 3e-8])
    _, p_b = qz.quantize_pattern(pattern, 1e-10)
    assert p_b == 10  # PQ_ext = 500 -> 9 magnitude bits + sign (paper: ~10)


def test_scale_quantization_covers_unit_interval():
    s_b = 10
    scales = np.linspace(-1, 1, 101)
    sq = qz.quantize_scales(scales, s_b)
    back = qz.dequantize_scales(sq, s_b)
    # binsize = 2^-(s_b-1); +1 is clamped by one extra bin
    binsize = 2.0 ** -(s_b - 1)
    assert np.max(np.abs(back - scales)) <= binsize
    assert sq.max() <= (1 << (s_b - 1)) - 1
    assert sq.min() >= -(1 << (s_b - 1))


def test_quantize_block_guarantees_error_bound(rng):
    eb = 1e-10
    pattern = rng.standard_normal(16) * 1e-7
    scales = rng.uniform(-1, 1, 8)
    block = np.outer(scales, pattern) + rng.standard_normal((8, 16)) * 1e-9
    q = qz.quantize_block(block, pattern, scales, eb)
    approx = qz.reconstruct_block(q.pq, q.sq, eb, q.s_b)
    recon = qz.apply_error_correction(approx, q.ecq, eb)
    assert np.max(np.abs(recon - block)) <= eb
    assert q.s_b == q.p_b  # the paper's practical coupling


def test_ecq_bin_numbers_match_fig6_binning():
    vals = np.array([0, 1, -1, 2, 3, -3, 4, 7, 8, -8, 1 << 20])
    bins = qz.ecq_bin_numbers(vals)
    assert bins.tolist() == [1, 2, 2, 3, 3, 3, 4, 4, 5, 5, 22]


def test_ec_b_max_from_extremum():
    assert qz.ec_b_max(np.array([0, 0])) == 1
    assert qz.ec_b_max(np.array([0, -1])) == 2
    assert qz.ec_b_max(np.array([5])) == 4
    assert qz.ec_b_max(np.zeros(0, dtype=np.int64)) == 1


def test_theoretical_lower_bound_ecb():
    # Eq. 19 with Dev_ext = 1e-8, EB = 1e-10: log2(99) -> 7 bits.
    assert qz.theoretical_lower_bound_ecb(1e-8, 1e-10) == 7
    assert qz.theoretical_lower_bound_ecb(1e-11, 1e-10) == 1


def test_naive_s_bits_reproduces_paper_33():
    # §IV-B worked example: EB=1e-10 -> S_b = 33 with the naive method.
    assert qz.naive_s_bits(1e-10) == 34  # 33 magnitude bits + sign

def test_small_eb_relative_to_pattern_gives_wide_pq(rng):
    pattern = np.array([1.0, -0.5])
    pq, p_b = qz.quantize_pattern(pattern, 1e-12)
    assert p_b >= 40
    assert qz.dequantize_pattern(pq, 1e-12) == pytest.approx(pattern, abs=1e-12)
