"""Unit tests for the PaSTRI stream header (repro.core.header)."""

import pytest

from repro.bitio import BitReader, BitWriter
from repro.core import header as fmt
from repro.core.blocking import BlockSpec
from repro.core.scaling import ScalingMetric
from repro.errors import FormatError, ParameterError


def make_header(**overrides):
    kw = dict(
        error_bound=1e-10,
        spec=BlockSpec((6, 6, 6, 6)),
        n_blocks=123,
        n_tail=7,
        tree_id=5,
        metric=ScalingMetric.ER,
    )
    kw.update(overrides)
    return fmt.StreamHeader(**kw)


def test_header_roundtrip():
    hdr = make_header()
    w = BitWriter()
    fmt.write_header(w, hdr)
    assert w.nbits == fmt.StreamHeader.NBITS
    got = fmt.read_header(BitReader(w.getvalue()))
    assert got == hdr


def test_header_roundtrip_all_metrics_and_trees():
    for metric in ScalingMetric:
        for tree in (1, 2, 3, 4, 5):
            hdr = make_header(metric=metric, tree_id=tree)
            w = BitWriter()
            fmt.write_header(w, hdr)
            got = fmt.read_header(BitReader(w.getvalue()))
            assert got.metric is metric and got.tree_id == tree


def test_bad_magic_rejected():
    w = BitWriter()
    fmt.write_header(w, make_header())
    blob = bytearray(w.getvalue())
    blob[0] ^= 0xFF
    with pytest.raises(FormatError):
        fmt.read_header(BitReader(bytes(blob)))


def test_bad_version_rejected():
    w = BitWriter()
    fmt.write_header(w, make_header())
    blob = bytearray(w.getvalue())
    blob[4] ^= 0x01  # version byte
    with pytest.raises(FormatError):
        fmt.read_header(BitReader(bytes(blob)))


def test_truncated_header_rejected():
    w = BitWriter()
    fmt.write_header(w, make_header())
    with pytest.raises(FormatError):
        fmt.read_header(BitReader(w.getvalue()[:10]))


def test_oversized_dims_rejected():
    hdr = make_header(spec=BlockSpec((1 << 16, 1, 1, 1)))
    with pytest.raises(ParameterError):
        fmt.write_header(BitWriter(), hdr)
