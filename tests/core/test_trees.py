"""Unit tests for the five ECQ encoding trees (repro.core.trees)."""

import numpy as np
import pytest

from repro.bitio import BitWriter
from repro.core.trees import TREE_IDS, decode_ecq, encode_ecq, encoded_size_bits
from repro.errors import ParameterError


def roundtrip(vals, ecb, tree):
    codes, lengths = encode_ecq(np.asarray(vals, dtype=np.int64), ecb, tree)
    w = BitWriter()
    w.write_varlen_array(codes, lengths)
    bits = np.unpackbits(np.frombuffer(w.getvalue(), np.uint8))
    out, end = decode_ecq(bits, 0, len(vals), ecb, tree)
    assert end == w.nbits
    return out.tolist(), w.nbits


def test_tree1_codeword_shapes():
    codes, lengths = encode_ecq(np.array([0, 1, -5]), 4, 1)
    assert lengths.tolist() == [1, 5, 5]
    assert codes[0] == 0
    # '1' + offset-binary(1 + 8) = 1_1001
    assert codes[1] == 0b11001


def test_tree2_puts_plus_one_high():
    codes, lengths = encode_ecq(np.array([0, 1, -1, 3]), 4, 2)
    assert lengths.tolist() == [1, 2, 3, 7]
    assert codes[1] == 0b10 and codes[2] == 0b110


def test_tree3_pushes_others_higher_than_tree2():
    vals = np.array([5, -6, 7])
    _, l3 = encode_ecq(vals, 5, 3)
    _, l2 = encode_ecq(vals, 5, 2)
    assert np.all(l3 == l2 - 1)  # exactly the paper's "1 less bit"


def test_tree4_paper_examples():
    # Paper: 0 -> '0'; -1 -> '10' + '1'; +1 -> '10' + '0'.
    codes, lengths = encode_ecq(np.array([0, 1, -1]), 6, 4)
    assert (codes[0], lengths[0]) == (0, 1)
    assert (codes[1], lengths[1]) == (0b100, 3)
    assert (codes[2], lengths[2]) == (0b101, 3)
    # ±[2,3] -> '110' + 2 bits.
    codes, lengths = encode_ecq(np.array([2, 3, -2, -3]), 6, 4)
    assert lengths.tolist() == [5, 5, 5, 5]
    assert codes.tolist() == [0b11000, 0b11001, 0b11010, 0b11011]


def test_tree4_top_bin_drops_terminator():
    # ecb=4: top bin ±[4,7] has prefix '111' (no trailing 0) + 3 bits.
    codes, lengths = encode_ecq(np.array([4, -7]), 4, 4)
    assert lengths.tolist() == [6, 6]


def test_tree5_small_range_is_three_leaf_code():
    codes, lengths = encode_ecq(np.array([0, 1, -1]), 2, 5)
    assert codes.tolist() == [0b0, 0b10, 0b11]
    assert lengths.tolist() == [1, 2, 2]


def test_tree5_defers_to_tree3_for_large_range():
    vals = np.array([0, 1, -1, 9, -12])
    c5, l5 = encode_ecq(vals, 6, 5)
    c3, l3 = encode_ecq(vals, 6, 3)
    assert np.array_equal(c5, c3) and np.array_equal(l5, l3)


@pytest.mark.parametrize("tree", TREE_IDS)
@pytest.mark.parametrize("ecb", [2, 3, 5, 11, 22])
def test_roundtrip_random_skewed(tree, ecb, rng):
    hi = (1 << (ecb - 1)) - 1
    vals = rng.integers(-hi, hi + 1, 500)
    mask = rng.random(500) < 0.85
    vals[mask] = rng.integers(-1, 2, int(mask.sum()))
    if ecb == 2:
        vals = np.clip(vals, -1, 1)
    out, _ = roundtrip(vals, ecb, tree)
    assert out == vals.tolist()


@pytest.mark.parametrize("tree", TREE_IDS)
def test_encoded_size_matches_actual_bits(tree, rng):
    ecb = 7
    vals = rng.integers(-63, 64, 300)
    _, nbits = roundtrip(vals, ecb, tree)
    assert nbits == encoded_size_bits(vals, ecb, tree)


@pytest.mark.parametrize("tree", TREE_IDS)
def test_extremes_of_range_roundtrip(tree):
    ecb = 9
    hi = (1 << (ecb - 1)) - 1
    vals = [0, hi, -hi, 1, -1, hi // 2, -(hi // 2)]
    out, _ = roundtrip(vals, ecb, tree)
    assert out == vals


def test_all_zero_stream_costs_one_bit_per_point():
    vals = np.zeros(64, dtype=np.int64)
    for tree in TREE_IDS:
        assert encoded_size_bits(vals, 3, tree) == 64


def test_rejects_unknown_tree_and_bad_ecb():
    with pytest.raises(ParameterError):
        encode_ecq(np.array([0]), 4, 6)
    with pytest.raises(ParameterError):
        encode_ecq(np.array([0]), 1, 1)
    with pytest.raises(ParameterError):
        decode_ecq(np.zeros(8, dtype=np.uint8), 0, 1, 4, 0)


def test_decode_zero_tokens_is_empty():
    out, end = decode_ecq(np.zeros(4, dtype=np.uint8), 2, 0, 4, 5)
    assert out.size == 0 and end == 2


def test_decode_is_bounded_by_segment():
    # decoding must not scan past n * max_token_len even in a long stream
    vals = np.array([0, 0, 1])
    codes, lengths = encode_ecq(vals, 2, 5)
    w = BitWriter()
    w.write_varlen_array(codes, lengths)
    w.write_uint(0xFFFF, 16)  # trailing unrelated data
    bits = np.unpackbits(np.frombuffer(w.getvalue(), np.uint8))
    out, end = decode_ecq(bits, 0, 3, 2, 5)
    assert out.tolist() == [0, 0, 1]
    assert end == 4
