"""Tests for automatic block-structure detection (repro.core.autodetect)."""

import numpy as np
import pytest

from repro.core import PaSTRICompressor
from repro.core.autodetect import detect_block_spec, period_scores
from repro.errors import ParameterError
from tests.conftest import make_patterned_stream


def test_period_scores_peak_at_true_period(rng):
    data = make_patterned_stream(rng, n_blocks=20, dims=(1, 8, 1, 24), zero_blocks=0)
    cands = np.array([8, 12, 24, 30, 48])
    scores = period_scores(data, cands)
    # 24 and its multiple 48 score near 1; off-periods score lower
    assert scores[2] > 0.99
    assert scores[2] > scores[1] + 0.1


def test_detects_synthetic_geometry(rng):
    data = make_patterned_stream(rng, n_blocks=30, dims=(1, 12, 1, 36), zero_blocks=0)
    res = detect_block_spec(data)
    assert res.spec.sb_size == 36
    assert res.confident
    assert res.trial_ratio > 10


def test_detected_spec_compresses_close_to_true_spec(rng):
    data = make_patterned_stream(rng, n_blocks=30, dims=(6, 6, 6, 6))
    res = detect_block_spec(data)
    assert res.spec.sb_size == 36  # the true ket sweep
    detected = PaSTRICompressor(dims=res.spec.dims)
    true = PaSTRICompressor(dims=(6, 6, 6, 6))
    size_detected = len(detected.compress(data, 1e-10))
    size_true = len(true.compress(data, 1e-10))
    assert size_detected < 1.3 * size_true
    out = detected.decompress(detected.compress(data, 1e-10))
    assert np.max(np.abs(out - data)) <= 1e-10


def test_unstructured_data_is_not_confident(rng):
    data = rng.standard_normal(50_000)
    res = detect_block_spec(data)
    assert not res.confident
    assert res.trial_ratio < 2.0


def test_smooth_non_periodic_data(rng):
    data = np.sin(np.linspace(0, 20, 30_000)) * 1e-6
    res = detect_block_spec(data)
    # valid spec regardless; compression still honours the bound
    codec = PaSTRICompressor(dims=res.spec.dims)
    out = codec.decompress(codec.compress(data, 1e-10))
    assert np.max(np.abs(out - data)) <= 1e-10


def test_too_little_data_rejected():
    with pytest.raises(ParameterError):
        detect_block_spec(np.zeros(4))
