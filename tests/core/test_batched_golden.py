"""Golden-blob regression tests for the batched codec kernels.

The digests below were produced by the *pre-batching* per-block
implementation on the cached ``trialanine_dd_dd_400`` dataset (seeded, so a
cache miss regenerates identical data).  Batched execution is an execution
strategy, not a format change: the emitted blob, the reconstruction, and
the ``StreamStats`` breakdown must all stay bit-identical.  Any change to
these digests means the stream format moved and ``docs/FORMAT.md`` (plus a
version bump) must move with it.
"""

import hashlib

import numpy as np
import pytest

from repro.core import PaSTRICompressor
from repro.harness.datasets import standard_dataset

#: error bound -> (blob sha256, blob bytes, output sha256, stats sha256),
#: recorded from the per-block implementation predating the batched kernels.
GOLDEN = {
    1e-6: (
        "ac230012fd31899a7090da7ea2309c1b88e5710688e0d840ef591d4c6371bd0a",
        35674,
        "762a706ddbe3c7a5b9a88b8a2115c0211dead30deb74c3e31eadc355ad1972e5",
        "2e910accd041f374e1bb9cea445fea6ada1d7908a60e919dfa9558129fa6a9d3",
    ),
    1e-10: (
        "68104ed1af0c81972eee614b2d831e8b92c3af23442dca04046d9029d291328c",
        161243,
        "73236715a64d7f2fd7f6ffb7871fb8abeb4d4bb7ca85d164e177bcfb58e797ab",
        "6a2179263a254a441d63750a0c3e9785cc023befe6f3c7ccbe1f1063f7dff4c3",
    ),
    1e-14: (
        "6e4066dfa69e94d9a79f33967ba2a5c26320dd629bb148cf88cb83595ca07580",
        397046,
        "7b21910eeb001ca38955aa54bd8e150d96958ae6bcd545921b994cdb7e33dc27",
        "f718d9d825e821941eefd197ae51a4565c9beeb0f4fc5d0a7ac0417b9109b6bc",
    ),
}


@pytest.fixture(scope="module")
def dd_data():
    return standard_dataset("trialanine", "(dd|dd)", "small").data


def stats_digest(st) -> str:
    """Canonical digest of a StreamStats breakdown (order-independent)."""
    parts = [
        st.n_points, st.n_blocks, st.bits_global_header, st.bits_block_headers,
        st.bits_pattern, st.bits_scales, st.bits_ecq, st.bits_raw, st.bits_tail,
        st.degenerate_blocks,
        sorted((int(k), int(v)) for k, v in st.kind_counts.items()),
        sorted((int(k), int(v)) for k, v in st.type_counts.items()),
        sorted((int(t), np.asarray(h).tolist()) for t, h in st.ecq_hist.items()),
    ]
    return hashlib.sha256(repr(parts).encode()).hexdigest()


@pytest.mark.parametrize("eb", sorted(GOLDEN))
def test_blob_output_and_stats_match_per_block_golden(dd_data, eb):
    blob_d, nbytes, out_d, st_d = GOLDEN[eb]
    codec = PaSTRICompressor(config="(dd|dd)", collect_stats=True)
    blob = codec.compress(dd_data, eb)
    assert len(blob) == nbytes
    assert hashlib.sha256(blob).hexdigest() == blob_d
    out = codec.decompress(blob)
    assert hashlib.sha256(out.tobytes()).hexdigest() == out_d
    assert np.max(np.abs(out - dd_data)) <= eb
    assert stats_digest(codec.last_stats) == st_d


def test_repeat_decodes_are_identical(dd_data):
    """Memoised (warm) and cold decodes must return the same array."""
    codec = PaSTRICompressor(config="(dd|dd)")
    blob = codec.compress(dd_data, 1e-10)
    cold = PaSTRICompressor(config="(dd|dd)").decompress(blob)
    first = codec.decompress(blob)
    warm = codec.decompress(blob)  # hits the parse cache
    assert np.array_equal(cold, first)
    assert np.array_equal(first, warm)
    assert warm is not first  # fresh output array per call


def test_parse_cache_is_bounded(dd_data):
    from repro.core.compressor import _PARSE_CACHE_MAX

    codec = PaSTRICompressor(config="(dd|dd)")
    blobs = [codec.compress(dd_data[: 1296 * (k + 1)], 1e-10) for k in range(4)]
    for b in blobs:
        codec.decompress(b)
    assert len(codec._parse_cache) == _PARSE_CACHE_MAX
    # most recent blobs survive
    assert blobs[-1] in codec._parse_cache


def test_corrupt_blob_is_never_cached(dd_data):
    from repro.errors import FormatError

    codec = PaSTRICompressor(config="(dd|dd)")
    blob = codec.compress(dd_data[: 1296 * 8], 1e-10)
    bad = blob[: len(blob) // 2]
    with pytest.raises(FormatError):
        codec.decompress(bad)
    assert bad not in codec._parse_cache
