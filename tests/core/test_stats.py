"""Unit tests for stream statistics (repro.core.stats)."""

import numpy as np

from repro.core.classify import BlockType
from repro.core.stats import BlockRecord, StreamStats


def rec(**overrides):
    kw = dict(
        kind=1,
        block_type=BlockType.TYPE2,
        p_b=10,
        ec_b_max=4,
        sparse=False,
        nol=3,
        bits_header=15,
        bits_pattern=360,
        bits_scales=360,
        bits_ecq=2000,
    )
    kw.update(overrides)
    return BlockRecord(**kw)


def test_block_record_total():
    assert rec().bits_total == 15 + 360 + 360 + 2000


def test_stream_accumulation():
    st = StreamStats(n_points=2592, bits_global_header=100)
    st.add_block(rec())
    st.add_block(rec(block_type=BlockType.TYPE0, bits_ecq=0))
    assert st.n_blocks == 2
    assert st.bits_ecq == 2000
    assert st.type_counts[BlockType.TYPE2] == 1
    assert st.bits_total == 100 + 2 * 15 + 2 * 360 + 2 * 360 + 2000


def test_compression_ratio_formula():
    st = StreamStats(n_points=1000)
    st.bits_global_header = 64 * 100  # output = 1/10th of input
    assert st.compression_ratio == 10.0


def test_breakdown_fractions_sum_to_one():
    st = StreamStats(n_points=100, bits_global_header=10)
    st.add_block(rec())
    frac = st.breakdown()
    assert abs(sum(frac.values()) - 1.0) < 1e-12
    assert frac["ecq"] > frac["pattern"]


def test_type_fractions_cover_all_types():
    st = StreamStats()
    st.add_block(rec(block_type=BlockType.TYPE1))
    fr = st.type_fractions()
    assert set(fr) == set(BlockType)
    assert fr[BlockType.TYPE1] == 1.0


def test_ecq_histogram_accumulates_and_clips():
    st = StreamStats()
    st.add_ecq_histogram(BlockType.TYPE3, np.array([1, 1, 2, 50]))
    st.add_ecq_histogram(BlockType.TYPE3, np.array([2]))
    h = st.ecq_hist[BlockType.TYPE3]
    assert h[1] == 2 and h[2] == 2
    assert h[-1] == 1  # clipped into the last bin
