"""Unit tests for block/sub-block geometry (repro.core.blocking)."""

import numpy as np
import pytest

from repro.core.blocking import SHELL_CARTESIANS, BlockSpec, split_blocks
from repro.errors import ParameterError


def test_shell_cartesian_counts_match_formula():
    for letter, l in zip("spdfgh", range(6)):
        assert SHELL_CARTESIANS[letter] == (l + 1) * (l + 2) // 2


@pytest.mark.parametrize(
    "config,dims",
    [
        ("(dd|dd)", (6, 6, 6, 6)),
        ("(ff|ff)", (10, 10, 10, 10)),
        ("(fd|ff)", (10, 6, 10, 10)),
        ("pd|df", (3, 6, 6, 10)),
        ("(ss|sp)", (1, 1, 1, 3)),
        ("(DD|DD)", (6, 6, 6, 6)),  # case-insensitive
    ],
)
def test_from_config_parses_shell_letters(config, dims):
    assert BlockSpec.from_config(config).dims == dims


@pytest.mark.parametrize("bad", ["", "(dd|d)", "xd|dd", "(dd,dd)", "dddd"])
def test_from_config_rejects_malformed(bad):
    with pytest.raises(ParameterError):
        BlockSpec.from_config(bad)


def test_geometry_of_fdff_matches_paper_example():
    # Paper §IV: (fd|ff) block = 10*6*10*10 = 6000 points, 60 sub-blocks of 100.
    spec = BlockSpec.from_config("(fd|ff)")
    assert spec.block_size == 6000
    assert spec.num_sb == 60
    assert spec.sb_size == 100


def test_config_rendering_roundtrip():
    assert BlockSpec.from_config("(dd|df)").config == "(dd|df)"


def test_reshape_is_a_view():
    spec = BlockSpec((2, 2, 2, 2))
    data = np.arange(16.0)
    view = spec.reshape(data)
    assert view.shape == (4, 4)
    view[0, 0] = -1
    assert data[0] == -1


def test_rejects_nonpositive_dims():
    with pytest.raises(ParameterError):
        BlockSpec((0, 1, 1, 1))
    with pytest.raises(ParameterError):
        BlockSpec((1, 1, 1))  # type: ignore[arg-type]


def test_split_blocks_counts():
    assert split_blocks(100, 30) == (3, 10)
    assert split_blocks(90, 30) == (3, 0)
    assert split_blocks(5, 30) == (0, 5)
    with pytest.raises(ParameterError):
        split_blocks(10, 0)
