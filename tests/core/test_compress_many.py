"""``compress_many`` — the fused micro-batch kernel entry point.

The load-bearing invariant: fusing several streams into one batched
numeric pass must be **byte-identical** to compressing each stream alone.
Every per-block decision (pattern fit, ECQ widths, dense/sparse choice,
raw fallback) is per-block independent, so the fused emission can differ
only by a bug.
"""

import numpy as np
import pytest

from repro.core.compressor import PaSTRICompressor


def _streams(codec, rng, include_edge_cases=True):
    N = codec.spec.block_size
    sizes = [N, 3 * N, 5 * N + 7, 40 * N]
    if include_edge_cases:
        sizes += [3, N - 1]  # tail-only streams
    out = [
        rng.normal(scale=1e-4, size=n) * np.exp(rng.normal(size=n))
        for n in sizes
    ]
    out.append(np.zeros(2 * N))  # zero blocks
    big = rng.normal(size=N)
    big[0] = 1e200  # forces the raw-block path
    out.append(np.tile(big, 2))
    return out


@pytest.mark.parametrize("tree_id", [1, 3, 4, 5])
@pytest.mark.parametrize("ecq_mode", ["adaptive", "dense", "sparse"])
def test_byte_identical_to_single_stream(tree_id, ecq_mode):
    codec = PaSTRICompressor(dims=(2, 2, 2, 2), tree_id=tree_id, ecq_mode=ecq_mode)
    rng = np.random.default_rng(tree_id * 17 + len(ecq_mode))
    streams = _streams(codec, rng)
    eb = 1e-10
    fused = codec.compress_many(streams, eb)
    for i, s in enumerate(streams):
        assert fused[i] == codec.compress(s, eb), f"stream {i} diverged"


def test_roundtrip_within_bound():
    codec = PaSTRICompressor(dims=(2, 2, 2, 2))
    rng = np.random.default_rng(0)
    streams = _streams(codec, rng, include_edge_cases=False)
    eb = 1e-8
    for s, blob in zip(streams, codec.compress_many(streams, eb)):
        out = codec.decompress(blob)
        assert out.size == s.size
        assert np.max(np.abs(out - s)) <= eb


def test_single_and_empty_batch():
    codec = PaSTRICompressor(dims=(1, 1, 1, 1))
    assert codec.compress_many([], 1e-10) == []
    data = np.random.default_rng(5).normal(size=64)
    assert codec.compress_many([data], 1e-10) == [codec.compress(data, 1e-10)]


def test_last_stats_cleared():
    codec = PaSTRICompressor(dims=(1, 1, 1, 1), collect_stats=True)
    data = np.random.default_rng(9).normal(size=64)
    codec.compress(data, 1e-10)
    assert codec.last_stats is not None
    codec.compress_many([data, data], 1e-10)
    assert codec.last_stats is None  # per-stream attribution is meaningless
