"""LRK1 blob hardening: corrupt input is contained, never a crash.

Same contract as the container and the other codecs: a damaged blob
raises :class:`FormatError` (or another :class:`ReproError`) before any
section is materialised — no struct.error, no over-allocation from lying
lengths, no silent garbage reconstruction from inconsistent headers.
"""

import struct

import numpy as np
import pytest

from repro.errors import FormatError, ReproError
from repro.lowrank import LowRankCompressor
from repro.lowrank import format as fmt
from repro.lowrank.residual import MODE_SPARSE, ResidualStream, decode_residual
from tests.conftest import make_patterned_stream

EB = 1e-10
DIMS = (2, 2, 3, 3)


@pytest.fixture
def blob(rng) -> bytes:
    data = make_patterned_stream(rng, n_blocks=30, dims=DIMS)
    return LowRankCompressor(dims=DIMS).compress(data, EB)


class TestHeaderValidation:
    def test_short_blob(self):
        with pytest.raises(FormatError, match="header"):
            fmt.parse_blob(b"LRK1")

    def test_bad_magic(self, blob):
        with pytest.raises(FormatError, match="magic"):
            fmt.parse_blob(b"XXXX" + blob[4:])

    def test_bad_version(self, blob):
        bad = blob[:4] + bytes([99]) + blob[5:]
        with pytest.raises(FormatError, match="version"):
            fmt.parse_blob(bad)

    def test_unknown_method(self, blob):
        bad = blob[:5] + bytes([7]) + blob[6:]
        with pytest.raises(FormatError, match="method"):
            fmt.parse_blob(bad)

    def test_unknown_factor_dtype(self, blob):
        bad = blob[:6] + bytes([9]) + blob[7:]
        with pytest.raises(FormatError, match="dtype"):
            fmt.parse_blob(bad)

    def test_section_lengths_must_cover_body(self, blob):
        # truncating the payload breaks the factor+residual+tail == body sum
        with pytest.raises(FormatError, match="do not add up"):
            fmt.parse_blob(blob[:-1])
        with pytest.raises(FormatError, match="do not add up"):
            fmt.parse_blob(blob + b"\x00")

    def test_inconsistent_element_count(self, blob):
        # n is at offset 16 (<4sBBBBd = 16 bytes); lie about it
        bad = bytearray(blob)
        bad[16:24] = struct.pack("<Q", 10**9)
        with pytest.raises(FormatError, match="inconsistent"):
            fmt.parse_blob(bytes(bad))

    def test_factor_section_shape_mismatch(self, blob):
        hdr = fmt.parse_blob(blob)
        with pytest.raises(FormatError, match="factor section"):
            fmt.factor_sections(hdr, [(hdr.n_blocks + 1, hdr.rank)])


class TestDecompressContainment:
    def test_rank0_with_payload_rejected(self):
        # a forged rank-0 header may not smuggle factor bytes past the
        # zero-reconstruction path
        stream = ResidualStream(0, 0, 0, 0, b"")
        blob = fmt.pack_blob(
            method=fmt.METHOD_SVD, factor_dtype_code=fmt.FACTOR_F32,
            error_bound=EB, n=36, n_blocks=1, dims=DIMS, rank=0,
            factor_bytes=b"\x00" * 8, residual=stream,
            tail=np.empty(0),
        )
        with pytest.raises(FormatError, match="rank-0"):
            LowRankCompressor(dims=DIMS).decompress(blob)

    def test_nonfinite_factors_rejected(self, blob):
        hdr = fmt.parse_blob(blob)
        inf = np.full(
            len(hdr.factor_bytes) // hdr.factor_dtype.itemsize,
            np.inf,
            dtype=hdr.factor_dtype,
        )
        forged = fmt.pack_blob(
            method=hdr.method,
            factor_dtype_code=0 if hdr.factor_dtype.itemsize == 4 else 1,
            error_bound=hdr.error_bound, n=hdr.n, n_blocks=hdr.n_blocks,
            dims=hdr.dims, rank=hdr.rank, factor_bytes=inf.tobytes(),
            residual=hdr.residual, tail=hdr.tail,
        )
        with pytest.raises(FormatError, match="non-finite"):
            LowRankCompressor(dims=DIMS).decompress(forged)

    def test_corrupt_residual_payload(self, rng):
        # force a sparse residual (noise defeats the factorization), then
        # trash its deflate stream
        data = rng.standard_normal(36 * 40) * 1e-6
        blob = LowRankCompressor(dims=DIMS, rank=1).compress(data, 1e-8)
        hdr = fmt.parse_blob(blob)
        assert hdr.residual.mode != 0, "test needs a residual-carrying blob"
        broken = ResidualStream(
            hdr.residual.mode, hdr.residual.nnz, hdr.residual.idx_code,
            hdr.residual.val_code, b"\x13\x37" * (len(hdr.residual.payload) // 2),
        )
        with pytest.raises(FormatError):
            out = np.zeros(hdr.n_blocks * 36)
            decode_residual(broken, out.size, hdr.error_bound, out)

    def test_residual_index_out_of_range(self):
        import zlib

        idx = np.array([50], dtype=np.uint8)  # body will only have 36 elems
        val = np.array([3], dtype=np.int8)
        stream = ResidualStream(
            MODE_SPARSE, 1, 4, 0, zlib.compress(idx.tobytes() + val.tobytes())
        )
        out = np.zeros(36)
        with pytest.raises(FormatError, match="out of range"):
            decode_residual(stream, 36, EB, out)

    def test_byte_flip_barrage_is_contained(self, blob, rng):
        """Any single corrupted byte: decode succeeds or raises ReproError."""
        codec = LowRankCompressor(dims=DIMS)
        positions = rng.choice(len(blob), size=min(120, len(blob)), replace=False)
        for pos in positions:
            mutated = bytearray(blob)
            mutated[pos] ^= 0x5A
            try:
                codec.decompress(bytes(mutated))
            except ReproError:
                pass
