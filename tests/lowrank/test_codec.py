"""Unit tests for the low-rank codec: bound contract, fallbacks, dispatch.

The headline invariant — ``max |x - x̂| <= EB`` for every input, whatever
the factorization quality — is hammered further by the hypothesis suite in
``tests/properties/test_lowrank_properties.py``; here we pin the designed
behaviours (method/rank knobs, exact degenerate paths, batch entry points,
registry/spec integration, telemetry).
"""

import numpy as np
import pytest

from repro import api, telemetry
from repro.errors import ParameterError
from repro.lowrank import LowRankCompressor
from repro.lowrank import format as fmt
from tests.conftest import make_patterned_stream

EB = 1e-10
DIMS = (2, 2, 3, 3)


@pytest.fixture
def stream(rng):
    return make_patterned_stream(rng, n_blocks=40, dims=DIMS)


class TestRoundTrip:
    @pytest.mark.parametrize("method", ["svd", "cp"])
    def test_bound_holds(self, stream, method):
        codec = LowRankCompressor(dims=DIMS, method=method)
        out = codec.decompress(codec.compress(stream, EB))
        assert out.size == stream.size
        assert float(np.max(np.abs(out - stream))) <= EB

    def test_white_noise_still_bounded(self, rng):
        # No low-rank structure at all: the residual pass (or the raw
        # fallback) must still deliver the bound.
        data = rng.standard_normal(36 * 50) * 1e-6
        codec = LowRankCompressor(dims=DIMS)
        blob = codec.compress(data, EB)
        out = codec.decompress(blob)
        assert float(np.max(np.abs(out - data))) <= EB
        # ...and never lose badly against verbatim doubles (+ header slack).
        assert len(blob) <= data.nbytes + 256

    def test_structured_batch_beats_lossless(self, rng):
        # Blocks drawn from a 3-dim subspace: the designed case. The
        # factored blob must be far below verbatim storage.
        basis = rng.standard_normal((3, 36))
        coef = rng.standard_normal((200, 3)) * 1e-6
        data = (coef @ basis).ravel()
        codec = LowRankCompressor(dims=DIMS)
        blob = codec.compress(data, EB)
        assert data.nbytes / len(blob) > 10
        out = codec.decompress(blob)
        assert float(np.max(np.abs(out - data))) <= EB

    def test_tail_elements_are_exact(self, rng):
        # 2 blocks + 7 leftover doubles: the tail rides verbatim.
        data = rng.standard_normal(36 * 2 + 7) * 1e-7
        codec = LowRankCompressor(dims=DIMS)
        out = codec.decompress(codec.compress(data, EB))
        np.testing.assert_array_equal(out[-7:], data[-7:])

    def test_decoder_is_shape_agnostic(self, stream):
        # Blobs are self-describing: any instance decodes any lowrank blob.
        blob = LowRankCompressor(dims=DIMS).compress(stream, EB)
        other = LowRankCompressor(dims=(6, 6, 6, 6))
        out = other.decompress(blob)
        assert float(np.max(np.abs(out - stream))) <= EB


class TestDegenerateInputs:
    def test_all_zero_body_roundtrips_exactly(self):
        data = np.zeros(36 * 8)
        codec = LowRankCompressor(dims=DIMS)
        blob = codec.compress(data, EB)
        np.testing.assert_array_equal(codec.decompress(blob), data)
        # and as a rank-0 blob, not a factored one
        assert fmt.parse_blob(blob).rank == 0
        assert len(blob) < 128

    def test_pure_tail_stream_roundtrips_exactly(self, rng):
        data = rng.standard_normal(11)  # < one (2,2,3,3) block
        codec = LowRankCompressor(dims=DIMS)
        np.testing.assert_array_equal(
            codec.decompress(codec.compress(data, EB)), data
        )

    def test_full_rank_pin_is_exact(self, rng):
        # rank >= min(n_blocks, block_size): factoring cannot pay, the
        # codec stores verbatim and must round-trip bit-for-bit.
        data = rng.standard_normal(36 * 5)
        codec = LowRankCompressor(dims=DIMS, rank=5)
        blob = codec.compress(data, EB)
        assert fmt.parse_blob(blob).method == fmt.METHOD_RAW
        np.testing.assert_array_equal(codec.decompress(blob), data)


class TestKnobs:
    def test_constructor_validation(self):
        with pytest.raises(ParameterError):
            LowRankCompressor()  # neither dims nor config
        with pytest.raises(ParameterError):
            LowRankCompressor(dims=DIMS, config="(dd|dd)")  # both
        with pytest.raises(ParameterError):
            LowRankCompressor(dims=DIMS, method="tucker")
        with pytest.raises(ParameterError):
            LowRankCompressor(dims=DIMS, rank=-1)
        with pytest.raises(ParameterError):
            LowRankCompressor(dims=DIMS, max_rank=0)

    def test_pinned_rank_is_recorded(self, stream):
        codec = LowRankCompressor(dims=DIMS, rank=2)
        hdr = fmt.parse_blob(codec.compress(stream, EB))
        assert hdr.rank == 2
        assert hdr.method == fmt.METHOD_SVD

    def test_reshaped_preserves_knobs(self):
        codec = LowRankCompressor(dims=DIMS, method="cp", rank=3, max_rank=17)
        re = codec.reshaped((6, 6, 6, 6))
        assert re.spec.dims == (6, 6, 6, 6)
        assert (re.method, re.policy.rank, re.policy.max_rank) == ("cp", 3, 17)

    def test_registry_and_spec_roundtrip(self, stream):
        codec = api.get_codec("lowrank", dims=DIMS, method="cp", rank=2)
        spec = api.codec_spec(codec)
        assert spec["name"] == "lowrank"
        rebuilt = api.codec_from_spec(spec)
        assert rebuilt.compress(stream, EB) == codec.compress(stream, EB)


class TestBatchEntryPoints:
    def test_compress_many_matches_compress(self, rng):
        codec = LowRankCompressor(dims=DIMS)
        streams = [
            make_patterned_stream(rng, n_blocks=n, dims=DIMS) for n in (4, 9, 20)
        ]
        blobs = codec.compress_many(streams, EB)
        assert blobs == [codec.compress(s, EB) for s in streams]

    def test_compression_is_deterministic(self, stream):
        # The randomized SVD runs on a fixed seed: same input, same bytes.
        a = LowRankCompressor(dims=DIMS).compress(stream, EB)
        b = LowRankCompressor(dims=DIMS).compress(stream, EB)
        assert a == b


class TestTelemetry:
    def test_lowrank_counters(self, stream):
        telemetry.enable()
        telemetry.reset()
        try:
            codec = LowRankCompressor(dims=DIMS)
            blob = codec.compress(stream, EB)
            codec.decompress(blob)
            snap = telemetry.metrics_snapshot()
        finally:
            telemetry.disable()
        assert snap["lowrank.compress.streams"]["value"] == 1
        assert snap["lowrank.compress.bytes_out"]["value"] == len(blob)
        assert snap["lowrank.residual.elements"]["value"] == 40 * 36
        assert snap["lowrank.rank"]["value"] >= 1
        # the shared codec instrumentation covers it too
        assert snap["codec.lowrank.compress.bytes_in"]["value"] == stream.nbytes
