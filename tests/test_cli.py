"""Tests for the `pastri` command-line interface (repro.cli)."""

import numpy as np
import pytest

from repro.chem.dataset import ERIDataset
from repro.cli import main
from repro.core.blocking import BlockSpec
from tests.conftest import make_patterned_stream


@pytest.fixture
def npz_dataset(tmp_path, rng):
    data = make_patterned_stream(rng, n_blocks=4)
    ds = ERIDataset(data=data, spec=BlockSpec((6, 6, 6, 6)), molecule_name="t", config="(dd|dd)")
    path = tmp_path / "ds.npz"
    ds.save(str(path))
    return path, data


def test_compress_decompress_cycle(tmp_path, npz_dataset, capsys):
    src, data = npz_dataset
    comp = tmp_path / "out.pastri"
    dec = tmp_path / "out.npy"
    assert main(["compress", str(src), str(comp), "--eb", "1e-10"]) == 0
    assert "ratio" in capsys.readouterr().out
    assert main(["decompress", str(comp), str(dec)]) == 0
    out = np.load(dec)
    assert np.max(np.abs(out - data)) <= 1e-10


def test_compress_raw_npy_requires_config(tmp_path, rng, capsys):
    src = tmp_path / "raw.npy"
    np.save(src, make_patterned_stream(rng, n_blocks=2))
    with pytest.raises(SystemExit):
        main(["compress", str(src), str(tmp_path / "x.pastri")])
    assert main(
        ["compress", str(src), str(tmp_path / "x.pastri"), "--config", "(dd|dd)"]
    ) == 0


def test_compress_with_auto_detected_structure(tmp_path, rng, capsys):
    src = tmp_path / "raw.npy"
    data = make_patterned_stream(rng, n_blocks=20, zero_blocks=0)
    np.save(src, data)
    comp = tmp_path / "auto.pastri"
    assert main(["compress", str(src), str(comp), "--config", "auto"]) == 0
    out = capsys.readouterr().out
    assert "detected block structure" in out
    dec = tmp_path / "auto.npy"
    assert main(["decompress", str(comp), str(dec)]) == 0
    assert np.max(np.abs(np.load(dec) - data)) <= 1e-10


def test_info_prints_header_fields(tmp_path, npz_dataset, capsys):
    src, _ = npz_dataset
    comp = tmp_path / "o.pastri"
    main(["compress", str(src), str(comp), "--eb", "1e-9"])
    capsys.readouterr()
    assert main(["info", str(comp)]) == 0
    out = capsys.readouterr().out
    assert "1e-09" in out and "(dd|dd)" in out


def test_cli_metric_and_tree_options(tmp_path, npz_dataset):
    src, data = npz_dataset
    comp = tmp_path / "o.pastri"
    assert main(["compress", str(src), str(comp), "--metric", "aar", "--tree", "1"]) == 0
    dec = tmp_path / "o.npy"
    assert main(["decompress", str(comp), str(dec)]) == 0
    assert np.max(np.abs(np.load(dec) - data)) <= 1e-10


def test_gen_creates_dataset(tmp_path, capsys):
    out = tmp_path / "ds.npz"
    assert main(["gen", "benzene", "(dd|dd)", str(out), "--blocks", "5"]) == 0
    assert "5 blocks" in capsys.readouterr().out
    from repro.chem.dataset import ERIDataset

    ds = ERIDataset.load(str(out))
    assert ds.n_blocks == 5 and ds.spec.dims == (6, 6, 6, 6)


def test_gen_rejects_unknown_molecule(tmp_path, capsys):
    assert main(["gen", "caffeine", "(dd|dd)", str(tmp_path / "x.npz")]) == 1
    assert "error:" in capsys.readouterr().err


def test_assess_reports_quality(tmp_path, npz_dataset, capsys):
    src, _ = npz_dataset
    assert main(["assess", str(src), "--eb", "1e-10"]) == 0
    out = capsys.readouterr().out
    assert "compression ratio" in out and "bound satisfied" in out and "True" in out


def test_assess_other_codec(tmp_path, npz_dataset, capsys):
    src, _ = npz_dataset
    assert main(["assess", str(src), "--codec", "sz"]) == 0
    assert "PSNR" in capsys.readouterr().out


def test_cli_reports_repro_errors(tmp_path, capsys):
    bad = tmp_path / "bad.pastri"
    bad.write_bytes(b"garbage")
    assert main(["info", str(bad)]) == 1
    assert "error:" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# container subcommands (pack / unpack / ls) and PSTF sniffing


def test_pack_unpack_cycle(tmp_path, npz_dataset, capsys):
    src, data = npz_dataset
    cont = tmp_path / "out.pstf"
    dec = tmp_path / "out.npy"
    assert main(["pack", str(src), str(cont), "--eb", "1e-10"]) == 0
    assert "frames" in capsys.readouterr().out
    assert main(["unpack", str(cont), str(dec)]) == 0
    assert np.max(np.abs(np.load(dec) - data)) <= 1e-10


def test_pack_chunk_blocks_controls_frame_count(tmp_path, npz_dataset, capsys):
    src, _ = npz_dataset  # 4 shell blocks
    cont = tmp_path / "out.pstf"
    assert main(["pack", str(src), str(cont), "--chunk-blocks", "1"]) == 0
    assert "4 frames" in capsys.readouterr().out


def test_ls_prints_frame_index(tmp_path, npz_dataset, capsys):
    src, _ = npz_dataset
    cont = tmp_path / "out.pstf"
    main(["pack", str(src), str(cont), "--chunk-blocks", "2"])
    capsys.readouterr()
    assert main(["ls", str(cont)]) == 0
    out = capsys.readouterr().out
    assert "codec pastri" in out
    assert "offset" in out and "crc32" in out
    assert "0x" in out  # per-frame checksums are shown


def test_info_sniffs_containers(tmp_path, npz_dataset, capsys):
    src, _ = npz_dataset
    cont = tmp_path / "out.pstf"
    main(["pack", str(src), str(cont)])
    capsys.readouterr()
    assert main(["info", str(cont)]) == 0
    out = capsys.readouterr().out
    assert "PSTF container (v2)" in out and "pastri" in out


def test_decompress_refuses_containers_with_guidance(tmp_path, npz_dataset, capsys):
    src, _ = npz_dataset
    cont = tmp_path / "out.pstf"
    main(["pack", str(src), str(cont)])
    capsys.readouterr()
    assert main(["decompress", str(cont), str(tmp_path / "x.npy")]) == 1
    err = capsys.readouterr().err
    assert "PSTF container" in err and "unpack" in err


def test_unpack_refuses_bare_streams(tmp_path, npz_dataset, capsys):
    src, _ = npz_dataset
    bare = tmp_path / "out.pastri"
    main(["compress", str(src), str(bare)])
    capsys.readouterr()
    assert main(["unpack", str(bare), str(tmp_path / "x.npy")]) == 1
    err = capsys.readouterr().err
    assert "not a PSTF container" in err and "decompress" in err


def test_ls_refuses_non_containers(tmp_path, capsys):
    bad = tmp_path / "bad.pstf"
    bad.write_bytes(b"garbage")
    assert main(["ls", str(bad)]) == 1
    assert "not a PSTF container" in capsys.readouterr().err


def _foreign_container(tmp_path):
    """A well-formed container written by a codec this build doesn't register."""
    from repro.streamio import ContainerWriter

    class Alien:
        name = "alien9000"

        def compress(self, data, error_bound):
            return np.ascontiguousarray(data).tobytes()

        def decompress(self, blob):
            return np.frombuffer(blob, dtype=np.float64)

        def spec_kwargs(self):
            return {"warp": 9, "mode": "quantum"}

    path = tmp_path / "alien.pstf"
    with open(path, "wb") as fh:
        w = ContainerWriter(fh, Alien(), 1e-10)
        w.append(np.arange(16.0), key="b0")
        w.close()
    return path


def test_info_renders_unknown_codec_spec(tmp_path, capsys):
    # a container from a newer/foreign build must still be describable
    cont = _foreign_container(tmp_path)
    assert main(["info", str(cont)]) == 0
    out = capsys.readouterr().out
    assert "alien9000" in out and "'warp': 9" in out
    assert "no codec of this name registered here" in out


def test_ls_renders_unknown_codec_spec(tmp_path, capsys):
    cont = _foreign_container(tmp_path)
    assert main(["ls", str(cont)]) == 0
    out = capsys.readouterr().out
    assert "codec alien9000" in out and "b0" in out


def test_unpack_unknown_codec_fails_cleanly(tmp_path, capsys):
    # decoding (unlike describing) genuinely needs the codec: clean error
    cont = _foreign_container(tmp_path)
    assert main(["unpack", str(cont), str(tmp_path / "x.npy")]) == 1
    assert "alien9000" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# the lowrank codec through the CLI


def test_pack_unpack_lowrank(tmp_path, npz_dataset, capsys):
    src, data = npz_dataset
    cont = tmp_path / "lr.pstf"
    dec = tmp_path / "lr.npy"
    assert main(["pack", str(src), str(cont), "--codec", "lowrank",
                 "--eb", "1e-10", "--max-rank", "8"]) == 0
    capsys.readouterr()
    assert main(["info", str(cont)]) == 0
    assert "lowrank" in capsys.readouterr().out
    assert main(["unpack", str(cont), str(dec)]) == 0
    assert np.max(np.abs(np.load(dec) - data)) <= 1e-10


def test_assess_lowrank_with_knobs(tmp_path, npz_dataset, capsys):
    src, _ = npz_dataset
    assert main(["assess", str(src), "--codec", "lowrank", "--eb", "1e-9",
                 "--method", "cp", "--rank", "2"]) == 0
    out = capsys.readouterr().out
    assert "lowrank" in out and "bound satisfied" in out


# ---------------------------------------------------------------------------
# --eb-mode


def test_compress_relative_bound(tmp_path, npz_dataset, capsys):
    src, data = npz_dataset
    comp = tmp_path / "rel.pastri"
    dec = tmp_path / "rel.npy"
    assert main(
        ["compress", str(src), str(comp), "--eb", "1e-5", "--eb-mode", "rel"]
    ) == 0
    out = capsys.readouterr().out
    assert "relative bound 1e-05 -> absolute" in out
    assert main(["decompress", str(comp), str(dec)]) == 0
    value_range = data.max() - data.min()
    assert np.max(np.abs(np.load(dec) - data)) <= 1e-5 * value_range


def test_assess_relative_bound(tmp_path, npz_dataset, capsys):
    src, _ = npz_dataset
    assert main(["assess", str(src), "--eb", "1e-4", "--eb-mode", "rel"]) == 0
    out = capsys.readouterr().out
    assert "(rel)" in out and "relative bound" in out


def test_pack_relative_bound(tmp_path, npz_dataset, capsys):
    src, data = npz_dataset
    cont = tmp_path / "rel.pstf"
    dec = tmp_path / "rel.npy"
    assert main(["pack", str(src), str(cont), "--eb", "1e-5", "--eb-mode", "rel"]) == 0
    assert "relative bound" in capsys.readouterr().out
    assert main(["unpack", str(cont), str(dec)]) == 0
    value_range = data.max() - data.min()
    assert np.max(np.abs(np.load(dec) - data)) <= 1e-5 * value_range


# ---------------------------------------------------------------------------
# --telemetry and the telemetry report subcommand


def test_pack_telemetry_prints_stage_table(tmp_path, npz_dataset, capsys):
    from repro import telemetry
    from repro.streamio import open_container

    src, data = npz_dataset
    cont = tmp_path / "out.pstf"
    assert main(["pack", str(src), str(cont), "--telemetry"]) == 0
    captured = capsys.readouterr()
    # report goes to stderr, the normal summary stays on stdout
    assert "frames" in captured.out
    assert "cli.pack" in captured.err
    assert "codec.pastri.compress" in captured.err
    # byte totals in the report match the container's actual payload
    with open_container(str(cont)) as r:
        on_disk = sum(f.length for f in r.frames)
    assert f"{on_disk}" in captured.err
    assert f"{data.nbytes}" in captured.err
    # the run cleans up after itself: telemetry off, state clear
    assert not telemetry.is_enabled()
    assert telemetry.peek_spans() == []


def test_telemetry_trace_file_and_report(tmp_path, npz_dataset, capsys):
    src, _ = npz_dataset
    cont = tmp_path / "out.pstf"
    trace_path = tmp_path / "trace.jsonl"
    assert main(["pack", str(src), str(cont), f"--telemetry={trace_path}"]) == 0
    assert "trace written" in capsys.readouterr().err
    assert trace_path.exists()

    assert main(["telemetry", "report", str(trace_path)]) == 0
    out = capsys.readouterr().out
    assert "cli.pack" in out
    assert "codec.pastri.compress.bytes_in" in out


def test_telemetry_decompress_and_assess(tmp_path, npz_dataset, capsys):
    src, _ = npz_dataset
    comp = tmp_path / "o.pastri"
    dec = tmp_path / "o.npy"
    assert main(["compress", str(src), str(comp), "--telemetry"]) == 0
    assert "cli.compress" in capsys.readouterr().err
    assert main(["decompress", str(comp), str(dec), "--telemetry"]) == 0
    assert "codec.pastri.decompress" in capsys.readouterr().err
    assert main(["assess", str(src), "--telemetry"]) == 0
    captured = capsys.readouterr()
    assert "bound satisfied" in captured.out
    assert "cli.assess" in captured.err


def test_telemetry_report_rejects_garbage(tmp_path, capsys):
    bad = tmp_path / "bad.jsonl"
    bad.write_text("definitely not json\n")
    assert main(["telemetry", "report", str(bad)]) == 1
    assert "error:" in capsys.readouterr().err
