"""§V-A claim: hybrid BF configurations follow the pure configurations' trends.

"In our experiments, we have also used d and f hybrid BF configurations
((df|fd), etc.) ... Metrics for hybrid configurations follow very similar
trends of the metrics of pure configurations."
"""

import numpy as np
import pytest

from repro.api import get_codec
from repro.chem import generate_dataset, glutamine
from repro.metrics import compression_ratio, max_abs_error

EB = 1e-10


@pytest.fixture(scope="module")
def hybrid_dataset():
    return generate_dataset(glutamine(), "(fd|ff)", n_blocks=25, seed=4)


def test_hybrid_block_geometry(hybrid_dataset):
    # the paper's §IV worked example: 6000 points, 60 sub-blocks of 100
    assert hybrid_dataset.spec.dims == (10, 6, 10, 10)
    assert hybrid_dataset.spec.block_size == 6000
    assert hybrid_dataset.spec.num_sb == 60
    assert hybrid_dataset.spec.sb_size == 100


def test_hybrid_follows_pure_trends(hybrid_dataset):
    """PaSTRI > SZ > 1 on hybrid data, with the bound intact — same ordering
    as the pure (dd|dd)/(ff|ff) grids of Fig. 9a."""
    ratios = {}
    for name in ("pastri", "sz"):
        kwargs = {"dims": hybrid_dataset.spec.dims} if name == "pastri" else {}
        codec = get_codec(name, **kwargs)
        blob = codec.compress(hybrid_dataset.data, EB)
        assert max_abs_error(hybrid_dataset.data, codec.decompress(blob)) <= EB
        ratios[name] = compression_ratio(hybrid_dataset.nbytes, len(blob))
    assert ratios["pastri"] > ratios["sz"] > 1.0


def test_hybrid_bra_ket_asymmetry_compresses(hybrid_dataset):
    """(fd| bra gives 60 asymmetric sub-blocks — the pattern logic must not
    assume square blocks."""
    from repro.core import PaSTRICompressor

    codec = PaSTRICompressor(dims=hybrid_dataset.spec.dims, collect_stats=True)
    codec.compress(hybrid_dataset.data, EB)
    st = codec.last_stats
    assert st.n_blocks == hybrid_dataset.n_blocks
    assert st.kind_counts.get(2, 0) == 0  # nothing fell back to raw
