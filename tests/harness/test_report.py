"""Unit tests for table rendering (repro.harness.report)."""

from repro.harness.report import fmt, render_series, render_table


def test_fmt_floats():
    assert fmt(1.2345) == "1.23"
    assert fmt(0.0001234) == "0.000123"
    assert fmt(12345.6) == "1.23e+04"
    assert fmt(0) == "0"
    assert fmt("x") == "x"


def test_render_table_alignment():
    out = render_table(["a", "metric"], [["x", 1.5], ["long-name", 22.0]])
    lines = out.splitlines()
    assert len(lines) == 4
    widths = {len(l) for l in lines}
    assert len(widths) == 1  # all lines equal width


def test_render_table_header_content():
    out = render_table(["col"], [[3.14159]])
    assert "col" in out and "3.14" in out


def test_render_series():
    out = render_series("curve", [(1.0, 2.0), (3.0, 4.0)])
    assert out.startswith("curve")
    assert len(out.splitlines()) == 3
