"""Tests for the experiment registry (repro.harness.registry)."""

import pytest

from repro.errors import ParameterError
from repro.harness.registry import EXPERIMENTS, run_experiment


def test_all_paper_artefacts_registered():
    assert set(EXPERIMENTS) >= {
        "fig3", "fig4", "fig6", "fig7", "fig9", "fig10", "fig11", "breakdown",
    }


def test_entries_have_titles_and_callables():
    for title, driver, printer in EXPERIMENTS.values():
        assert isinstance(title, str) and title
        assert callable(driver) and callable(printer)


def test_unknown_experiment_rejected():
    with pytest.raises(ParameterError):
        run_experiment("fig99")


def test_run_experiment_dispatches():
    out = run_experiment("fig10", dataset_bytes=1e11, size="tiny")
    assert "results" in out
