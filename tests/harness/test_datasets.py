"""Tests for standard dataset recipes and caching (repro.harness.datasets)."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.harness import datasets as hd


def test_standard_dataset_cached(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
    a = hd.standard_dataset("benzene", "(dd|dd)", size="tiny")
    files = list(tmp_path.glob("*.npz"))
    assert len(files) == 1
    b = hd.standard_dataset("benzene", "(dd|dd)", size="tiny")
    assert np.array_equal(a.data, b.data)
    assert len(list(tmp_path.glob("*.npz"))) == 1  # cache hit, no new file


def test_standard_dataset_block_counts(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
    ds = hd.standard_dataset("glutamine", "(dd|dd)", size="tiny")
    assert ds.n_blocks == hd.BLOCK_COUNTS["(dd|dd)"]["tiny"]


def test_unknown_molecule_rejected():
    with pytest.raises(ParameterError):
        hd.standard_dataset("caffeine", "(dd|dd)")


def test_unknown_size_rejected():
    with pytest.raises(ParameterError):
        hd.standard_dataset("benzene", "(dd|dd)", size="gigantic")


def test_corrupt_cache_regenerated(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
    hd.standard_dataset("benzene", "(dd|dd)", size="tiny")
    path = next(tmp_path.glob("*.npz"))
    path.write_bytes(b"corrupt")
    ds = hd.standard_dataset("benzene", "(dd|dd)", size="tiny")
    assert ds.n_blocks == hd.BLOCK_COUNTS["(dd|dd)"]["tiny"]


def test_recipes_cover_paper_grid():
    assert set(hd.MOLECULES) == {"benzene", "glutamine", "trialanine"}
    assert set(hd.CONFIGS) == {"(dd|dd)", "(ff|ff)"}
    assert hd.ERROR_BOUNDS == (1e-11, 1e-10, 1e-9)
