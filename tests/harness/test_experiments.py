"""Integration tests: every paper experiment runs and has the right shape.

These use the "tiny" dataset tier so the whole module stays fast; the
quantitative reproduction (paper-vs-measured) lives in benchmarks/ and
EXPERIMENTS.md.
"""

import numpy as np
import pytest

from repro.core import BlockType
from repro.harness import breakdown, fig3, fig6, fig9, fig10, fig11, tab_scaling, tab_trees


@pytest.fixture(scope="module", autouse=True)
def _shared_cache(tmp_path_factory):
    """Give the module one dataset cache so tiny datasets generate once."""
    import os

    old = os.environ.get("REPRO_CACHE")
    os.environ["REPRO_CACHE"] = str(tmp_path_factory.mktemp("cache"))
    yield
    if old is None:
        os.environ.pop("REPRO_CACHE", None)
    else:
        os.environ["REPRO_CACHE"] = old


def test_fig3_pattern_structure():
    res = fig3.run(size="tiny")
    s = res["summary"]
    # the rescaled sub-blocks must agree far better than their raw ranges
    assert s["max_deviation"] < 0.2 * max(s["sb0_range"], s["sb1_range"])
    assert s["max_compression_error"] <= s["error_bound"]
    assert res["deviation"].shape == res["sub_block_0"].shape


def test_fig4_er_is_competitive_and_valid():
    res = tab_scaling.run(size="tiny")
    ratios = {k: v["ratio"] for k, v in res["metrics"].items()}
    assert set(ratios) == {"FR", "ER", "AR", "AAR", "IS"}
    assert all(r > 1.0 for r in ratios.values())
    # paper: ER gives the best, most reliable matching (within a whisker)
    assert ratios["ER"] >= 0.95 * max(ratios.values())


def test_fig6_type_shares_and_histograms():
    res = fig6.run(size="tiny")
    fr = res["type_fractions"]
    assert abs(sum(fr.values()) - 1.0) < 1e-9
    for t, h in res["histograms"].items():
        assert isinstance(t, BlockType)
        assert h.sum() > 0
    # type-0 blocks contribute only bin-1 (all-zero ECQ) entries
    if BlockType.TYPE0 in res["histograms"]:
        h0 = res["histograms"][BlockType.TYPE0]
        assert h0[2:].sum() == 0


def test_fig7_all_trees_beat_raw():
    res = tab_trees.run(size="tiny")
    assert set(res["trees"]) == {1, 2, 3, 4, 5}
    assert all(r > 1.0 for r in res["trees"].values())
    # tree 5 equals tree 3 on large-EC blocks and wins on type-1 blocks
    assert res["trees"][5] >= res["trees"][3] * 0.999


def test_fig9_ratio_grid_shape():
    res = fig9.run_ratios(size="tiny", error_bounds=(1e-10,))
    cells = res["cells"]
    assert len(cells) == 6 * len(fig9.CODECS)  # 6 datasets x codecs
    for eb in res["error_bounds"]:
        avg = res["averages"]
        # headline: PaSTRI clearly ahead of both baselines on average
        assert avg[("pastri", eb)] > avg[("sz", eb)]
        assert avg[("pastri", eb)] > avg[("zfp", eb)]


def test_fig9_rate_distortion_dominance():
    res = fig9.run_rate_distortion(size="tiny")
    curves = res["curves"]
    # at matched error bounds PaSTRI spends fewer bits
    for p_pastri, p_sz in zip(curves["pastri"], curves["sz"]):
        assert p_pastri.error_bound == p_sz.error_bound
    mean_bits = {k: np.mean([p.bitrate for p in v]) for k, v in curves.items()}
    assert mean_bits["pastri"] < mean_bits["sz"]
    assert mean_bits["pastri"] < mean_bits["zfp"]


def test_fig10_shape(tmp_path):
    res = fig10.run(size="tiny", dataset_bytes=1e12)
    for name, sweep in res["results"].items():
        times = [r.dump_time for r in sweep]
        assert times[0] > times[-1] * 0.99  # falls (or saturates) with cores
    for i in range(4):
        assert (
            res["results"]["pastri"][i].dump_time
            < min(res["results"]["sz"][i].dump_time, res["results"]["zfp"][i].dump_time)
        )


def test_fig11_reuse_wins_at_paper_rates():
    res = fig11.run(rates="paper", dataset_bytes=1e9)
    for (config, eb), t in res["timings"].items():
        assert t.speedup > 1.0
        assert t.n_reuse == 20


def test_breakdown_structure():
    res = breakdown.run(size="tiny", lossless_sample=20_000)
    fr = res["fractions"]
    assert abs(sum(fr.values()) - 1.0) < 1e-9
    assert fr["ecq"] > 0.5  # ECQ dominates the output (paper: 70-80%)
    assert fr["bookkeeping"] < 0.05
    assert 1.0 < res["lossless_ratios"]["deflate"] < 4.0
