"""Tests for the whole-basis dump experiment (repro.harness.dump)."""

import pytest

from repro.harness import dump
from repro.harness.registry import EXPERIMENTS


@pytest.fixture(scope="module")
def result():
    return dump.run(molecule="benzene", max_blocks_per_class=6, with_d_shells=False)


def test_dump_registered():
    assert "dump" in EXPERIMENTS


def test_dump_runs_and_bounds(result):
    assert result["max_abs_error"] <= result["error_bound"]
    assert result["ratio"] > 1.0
    assert result["n_classes"] >= 6  # s/p letter combinations


def test_dump_class_accounting(result):
    for label, st in result["per_class"].items():
        assert st["blocks"] <= 6
        assert st["compressed"] > 0
        assert label.startswith("(") and "|" in label


def test_json_export(tmp_path, capsys):
    import json

    from repro.harness.__main__ import main

    out = tmp_path / "res.json"
    assert main(["fig10", "--json", str(out)]) == 0
    data = json.loads(out.read_text())
    assert "fig10" in data and "ratios" in data["fig10"]
