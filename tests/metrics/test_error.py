"""Unit tests for distortion metrics (repro.metrics.error)."""

import numpy as np
import pytest

from repro.errors import ErrorBoundViolation
from repro.metrics import assert_error_bound, max_abs_error, mse, psnr


def test_max_abs_error_basic():
    a = np.array([1.0, 2.0, 3.0])
    b = np.array([1.1, 2.0, 2.7])
    assert max_abs_error(a, b) == pytest.approx(0.3)


def test_mse_basic():
    a = np.zeros(4)
    b = np.array([1.0, -1.0, 1.0, -1.0])
    assert mse(a, b) == 1.0


def test_psnr_matches_paper_formula(rng):
    orig = rng.standard_normal(1000)
    noisy = orig + rng.standard_normal(1000) * 1e-4
    want = 20 * np.log10((orig.max() - orig.min()) / np.sqrt(mse(orig, noisy)))
    assert psnr(orig, noisy) == pytest.approx(want)


def test_psnr_perfect_reconstruction_is_inf():
    a = np.arange(10.0)
    assert psnr(a, a) == np.inf


def test_psnr_constant_signal_with_error():
    assert psnr(np.ones(5), np.zeros(5)) == -np.inf


def test_assert_error_bound_passes_and_fails():
    a = np.zeros(3)
    assert_error_bound(a, a + 1e-11, 1e-10)
    with pytest.raises(ErrorBoundViolation):
        assert_error_bound(a, a + 1e-9, 1e-10)
