"""Unit tests for size metrics (repro.metrics.ratio)."""

import pytest

from repro.errors import ParameterError
from repro.metrics import bitrate, compression_ratio


def test_compression_ratio():
    assert compression_ratio(1000, 100) == 10.0


def test_ratio_rejects_zero_compressed_size():
    with pytest.raises(ParameterError):
        compression_ratio(10, 0)


def test_bitrate_is_64_over_ratio():
    # paper §V-B: rate = 64 / compression_ratio for doubles
    assert bitrate(16.0) == 4.0
    assert bitrate(64.0) == 1.0


def test_bitrate_other_word_sizes():
    assert bitrate(8.0, bits_per_value=32) == 4.0


def test_bitrate_rejects_nonpositive():
    with pytest.raises(ParameterError):
        bitrate(0.0)
