"""Unit tests for rate-distortion sweeps (repro.metrics.ratedistortion)."""

import numpy as np

from repro.core import PaSTRICompressor
from repro.metrics import rd_curve
from tests.conftest import make_patterned_stream


def test_rd_curve_monotone_tradeoff(rng):
    data = make_patterned_stream(rng, n_blocks=10)
    codec = PaSTRICompressor(dims=(6, 6, 6, 6))
    curve = rd_curve(codec, data, [1e-12, 1e-10, 1e-8])
    # tighter bound -> more bits and higher PSNR
    assert curve[0].bitrate > curve[1].bitrate > curve[2].bitrate
    assert curve[0].psnr > curve[1].psnr > curve[2].psnr


def test_rd_points_respect_bounds(rng):
    data = make_patterned_stream(rng, n_blocks=5)
    codec = PaSTRICompressor(dims=(6, 6, 6, 6))
    for p in rd_curve(codec, data, [1e-11, 1e-9]):
        assert p.max_abs_error <= p.error_bound
        assert p.bitrate == 64.0 / p.ratio
