"""Tests for the Z-Checker-style assessment battery (repro.metrics.assessment)."""

import numpy as np
import pytest

from repro.core import PaSTRICompressor
from repro.metrics.assessment import (
    Assessment,
    assess,
    autocorrelation,
    error_histogram,
    pearson,
)
from repro.sz import SZCompressor
from tests.conftest import make_patterned_stream

EB = 1e-10


def test_autocorrelation_of_white_noise_near_zero(rng):
    x = rng.standard_normal(50_000)
    assert abs(autocorrelation(x)) < 0.02


def test_autocorrelation_of_smooth_signal_near_one():
    x = np.sin(np.linspace(0, 3, 10_000))
    assert autocorrelation(x) > 0.99


def test_autocorrelation_edge_cases():
    assert autocorrelation(np.zeros(10)) == 0.0
    assert autocorrelation(np.array([1.0])) == 0.0


def test_pearson_perfect_and_anti():
    a = np.arange(100.0)
    assert pearson(a, a) == pytest.approx(1.0)
    assert pearson(a, -a) == pytest.approx(-1.0)


def test_pearson_constant_signals():
    assert pearson(np.ones(5), np.ones(5)) == 1.0


def test_assess_pastri_battery(rng):
    data = make_patterned_stream(rng, n_blocks=10)
    a = assess(PaSTRICompressor(dims=(6, 6, 6, 6)), data, EB)
    assert isinstance(a, Assessment)
    assert a.bound_satisfied
    assert a.max_abs_error <= EB
    assert a.mean_abs_error <= a.max_abs_error
    assert a.rmse <= a.max_abs_error
    assert a.bitrate == pytest.approx(64.0 / a.ratio)
    assert a.pearson_correlation > 0.999999
    assert a.max_rel_to_range < 1e-2
    assert len(a.rows()) == 11


def test_assess_error_mean_unbiased(rng):
    """Round-to-nearest quantization leaves no systematic bias."""
    data = make_patterned_stream(rng, n_blocks=20)
    a = assess(PaSTRICompressor(dims=(6, 6, 6, 6)), data, EB)
    assert abs(a.error_mean) < 0.2 * a.error_std + 1e-14


def test_error_histogram_within_bound(rng):
    data = make_patterned_stream(rng, n_blocks=10)
    counts, edges = error_histogram(SZCompressor(), data, EB)
    assert counts.sum() == data.size
    assert edges[0] == -EB and edges[-1] == EB


def test_assess_works_for_all_registered_codecs(rng):
    from repro.api import available_codecs, get_codec

    data = make_patterned_stream(rng, n_blocks=3, dims=(2, 2, 3, 3))
    for name in available_codecs():
        kwargs = {"dims": (2, 2, 3, 3)} if name in ("pastri", "lowrank") else {}
        a = assess(get_codec(name, **kwargs), data, EB)
        assert a.bound_satisfied
