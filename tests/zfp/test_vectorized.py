"""The vectorised ZFP encoder must be bit-identical to the scalar reference."""

import numpy as np
import pytest

from repro.bitio import BitWriter
from repro.zfp import ZFPCompressor
from repro.zfp import transform as tf
from repro.zfp.bitplane import encode_block
from repro.zfp.vectorized import encode_blocks, msb_positions


def test_msb_positions_exact(rng):
    vals = np.concatenate(
        [
            rng.integers(0, 2**63 - 1, 2000, dtype=np.uint64),
            np.array([0, 1, 2, 2**52, 2**53 + 1, 2**62, 2**63 - 1], dtype=np.uint64),
        ]
    )
    got = msb_positions(vals)
    want = np.array([int(v).bit_length() - 1 for v in vals])
    assert np.array_equal(got, want)


@pytest.mark.parametrize("maxprec", [1, 2, 7, 23, 58])
def test_tokens_concatenate_to_scalar_payload(maxprec, rng):
    top = tf.TOP_PLANE
    u = rng.integers(0, 2**62, (50, 4), dtype=np.uint64)
    codes, lengths = encode_blocks(u, top, maxprec)
    for g in range(u.shape[0]):
        w = BitWriter()
        w.write_varlen_array(codes[g], lengths[g])
        got = w.getvalue()
        payload, nbits = encode_block(tuple(int(x) for x in u[g]), top, maxprec)
        ref = BitWriter()
        ref.write_bigint(payload, nbits)
        assert nbits == int(lengths[g].sum())
        assert got == ref.getvalue()


@pytest.mark.parametrize("eb", [1e-6, 1e-10, 1e-13])
def test_full_streams_bit_identical(eb, rng):
    data = rng.standard_normal(4096) * np.exp(rng.uniform(-25, 2, 4096))
    data[100:120] = 0.0
    fast = ZFPCompressor(vectorized=True).compress(data, eb)
    slow = ZFPCompressor(vectorized=False).compress(data, eb)
    assert fast == slow


def test_vectorized_roundtrip_and_speed(rng):
    data = rng.standard_normal(20000) * 1e-6
    c = ZFPCompressor()
    out = c.decompress(c.compress(data, 1e-10))
    assert np.max(np.abs(out - data)) <= 1e-10


def test_raw_and_zero_blocks_in_vector_path(rng):
    data = np.concatenate(
        [np.zeros(8), rng.standard_normal(8) * 1e20, rng.standard_normal(8) * 1e-7]
    )
    eb = 1e-12
    fast = ZFPCompressor(vectorized=True).compress(data, eb)
    slow = ZFPCompressor(vectorized=False).compress(data, eb)
    assert fast == slow
    out = ZFPCompressor().decompress(fast)
    assert np.max(np.abs(out - data)) <= eb
