"""Unit tests for the ZFP block transform (repro.zfp.transform)."""

import numpy as np
import pytest

from repro.zfp import transform as tf


def test_block_exponents_match_frexp():
    blocks = np.array([[0.75, 0.1, -0.2, 0.0], [0.0, 0.0, 0.0, 0.0], [1e-8, 0, 0, 0]])
    e = tf.block_exponents(blocks)
    assert e[0] == 0  # 0.75 = 0.75 * 2^0
    assert e[1] == 0  # all-zero convention
    assert e[2] == np.frexp(1e-8)[1]


def test_fixed_point_roundtrip_error(rng):
    blocks = rng.standard_normal((100, 4)) * np.exp(rng.uniform(-10, 10, (100, 1)))
    e = tf.block_exponents(blocks)
    q = tf.to_fixed_point(blocks, e)
    back = tf.from_fixed_point(q, e)
    # quantization step is 2^(e - SCALE_BITS)
    step = np.ldexp(1.0, e - tf.SCALE_BITS)
    assert np.all(np.abs(back - blocks) <= 0.5 * step[:, None])
    assert np.abs(q).max() <= 2**tf.SCALE_BITS


def test_lift_roundtrip_within_ulp(rng):
    q = rng.integers(-(2**60), 2**60, (1000, 4))
    back = tf.inv_lift(tf.fwd_lift(q))
    assert np.abs(back - q).max() <= 4  # dropped low bits only


def test_lift_decorrelates_constant_blocks():
    q = np.full((1, 4), 1 << 20, dtype=np.int64)
    t = tf.fwd_lift(q)
    assert t[0, 0] == 1 << 20  # DC coefficient
    assert np.all(np.abs(t[0, 1:]) <= 1)


def test_lift_decorrelates_linear_ramps():
    q = (np.arange(4, dtype=np.int64) * (1 << 16))[None, :]
    t = tf.fwd_lift(q)
    # only DC and first-order coefficients significant
    assert abs(t[0, 3]) <= 2
    assert abs(t[0, 2]) <= 2


def test_negabinary_roundtrip_extremes(rng):
    vals = np.concatenate(
        [rng.integers(-(2**62), 2**62, 1000), np.array([0, 1, -1, 2**61, -(2**61)])]
    )
    assert np.array_equal(tf.from_negabinary(tf.to_negabinary(vals)), vals)


def test_negabinary_magnitude_ordering():
    # negabinary maps small magnitudes to small unsigned values
    u_small = tf.to_negabinary(np.array([0, 1, -1]))
    u_big = tf.to_negabinary(np.array([1 << 40, -(1 << 40)]))
    assert u_small.max() < u_big.min()


def test_negabinary_fits_below_top_plane(rng):
    vals = rng.integers(-(2**61), 2**61, 5000)
    u = tf.to_negabinary(tf.fwd_lift(vals.reshape(-1, 4)))
    assert np.all(u >> np.uint64(tf.TOP_PLANE + 1) == 0)


def test_max_precision_scales_with_exponent():
    e = np.array([0, -20, -40])
    mp = tf.max_precision(e, 1e-10)
    assert mp[0] > mp[1] > mp[2]
    assert np.all(mp >= 0)


def test_max_precision_zero_below_tolerance():
    # a block at 2^-60 with tolerance 1e-10: nothing to encode
    assert tf.max_precision(np.array([-60]), 1e-10)[0] == 0
