"""Unit + integration tests for the ZFP baseline (repro.zfp.compressor)."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.zfp import ZFPCompressor

EB = 1e-10


def test_roundtrip_error_bound(rng):
    data = rng.standard_normal(8192) * 1e-6
    c = ZFPCompressor()
    out = c.decompress(c.compress(data, EB))
    assert np.max(np.abs(out - data)) <= EB


def test_partial_final_block_padded(rng):
    for n in (1, 2, 3, 5, 4097):
        data = rng.standard_normal(n) * 1e-7
        out = ZFPCompressor().decompress(ZFPCompressor().compress(data, EB))
        assert out.size == n
        assert np.max(np.abs(out - data)) <= EB


def test_zero_stream_costs_one_bit_per_block():
    data = np.zeros(4000)
    blob = ZFPCompressor().compress(data, EB)
    assert len(blob) < 200  # 1000 zero flags + header
    assert np.array_equal(ZFPCompressor().decompress(blob), data)


def test_blocks_below_tolerance_cost_only_header_bits():
    data = np.full(400, 1e-20)
    blob = ZFPCompressor().compress(data, EB)
    out = ZFPCompressor().decompress(blob)
    # reconstructed as zero: still within the bound
    assert np.max(np.abs(out - data)) <= EB
    assert len(blob) < 400


def test_mixed_magnitude_blocks(rng):
    data = (rng.standard_normal(4096) * np.exp(rng.uniform(-30, 2, 4096)))
    c = ZFPCompressor()
    out = c.decompress(c.compress(data, 1e-9))
    assert np.max(np.abs(out - data)) <= 1e-9


@pytest.mark.parametrize("eb", [1e-6, 1e-9, 1e-12])
def test_ratio_improves_with_looser_bounds(eb, rng):
    data = rng.standard_normal(4096) * 1e-6
    blob = ZFPCompressor().compress(data, eb)
    out = ZFPCompressor().decompress(blob)
    assert np.max(np.abs(out - data)) <= eb


def test_looser_bound_smaller_output(rng):
    data = rng.standard_normal(4096) * 1e-6
    sizes = [len(ZFPCompressor().compress(data, eb)) for eb in (1e-12, 1e-9, 1e-6)]
    assert sizes[0] > sizes[1] > sizes[2]


def test_smooth_data_beats_random(rng):
    smooth = np.sin(np.linspace(0, 20, 4096)) * 1e-6
    noisy = rng.standard_normal(4096) * 1e-6
    assert len(ZFPCompressor().compress(smooth, EB)) < len(
        ZFPCompressor().compress(noisy, EB)
    )


def test_garbage_rejected():
    with pytest.raises(FormatError):
        ZFPCompressor().decompress(b"definitely not zfp")


def test_truncated_stream_rejected(rng):
    blob = ZFPCompressor().compress(rng.standard_normal(64), EB)
    with pytest.raises(FormatError):
        ZFPCompressor().decompress(blob[:12])


def test_real_eri_dataset(tiny_eri_dataset):
    ds = tiny_eri_dataset
    c = ZFPCompressor()
    blob = c.compress(ds.data, EB)
    assert np.max(np.abs(c.decompress(blob) - ds.data)) <= EB
