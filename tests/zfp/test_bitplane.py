"""Unit tests for ZFP's group-tested bit-plane coder (repro.zfp.bitplane)."""

import numpy as np
import pytest

from repro.zfp.bitplane import decode_block, encode_block, max_payload_bits


def roundtrip(u, top, maxprec):
    payload, nbits = encode_block(tuple(int(x) for x in u), top, maxprec)
    assert nbits <= max_payload_bits(maxprec)
    # MSB-first payload: decoder reads from bit position nbits-1 downward.
    vals, used = decode_block(payload, nbits, top, maxprec)
    assert used == nbits
    return vals


def mask_planes(v, top, maxprec):
    """Keep only the encoded planes of a value."""
    keep = 0
    for k in range(top, top - maxprec, -1):
        keep |= 1 << k
    return v & keep


@pytest.mark.parametrize("maxprec", [1, 3, 8, 20, 63])
def test_roundtrip_random_blocks(maxprec, rng):
    top = 62
    for _ in range(30):
        u = [int(x) for x in rng.integers(0, 2**62, 4)]
        got = roundtrip(u, top, maxprec)
        assert list(got) == [mask_planes(v, top, maxprec) for v in u]


def test_all_zero_block_costs_one_bit_per_plane():
    payload, nbits = encode_block((0, 0, 0, 0), 62, 10)
    assert nbits == 10  # one group-test 0 per plane
    assert payload == 0


def test_single_significant_value():
    u = (1 << 62, 0, 0, 0)
    got = roundtrip(u, 62, 5)
    assert got[0] == 1 << 62 and got[1:] == (0, 0, 0)


def test_last_value_implied_one():
    # Only value 3 significant: the trailing 1 is implied, saving a bit.
    u = (0, 0, 0, 1 << 62)
    payload, nbits = encode_block(u, 62, 1)
    # plane: group-test 1, then three 0 value bits, implied 1 -> 4 bits
    assert nbits == 4
    vals, _ = decode_block(payload, nbits, 62, 1)
    assert vals == u


def test_all_significant_from_first_plane():
    u = tuple((1 << 62) | (k << 40) for k in range(4))
    got = roundtrip(u, 62, 23)
    assert list(got) == [mask_planes(v, 62, 23) for v in u]


def test_full_precision_is_lossless(rng):
    top = 62
    u = [int(x) for x in rng.integers(0, 2**62, 4)]
    got = roundtrip(u, top, top + 1)
    assert list(got) == u


def test_significance_is_monotone_across_planes():
    # once a value is significant its bits are coded verbatim; a value with
    # a high MSB and zero low bits must still roundtrip
    u = (0b1000000, 0b1111111, 0, 0)
    got = roundtrip([v << 56 for v in u], 62, 63)
    assert list(got) == [v << 56 for v in u]
