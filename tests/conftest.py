"""Shared fixtures: RNG, synthetic patterned streams, tiny real ERI data."""

from __future__ import annotations

import numpy as np
import pytest

from repro.chem import ERIEngine, benzene, generate_dataset
from repro.chem.basis import BasisSet, Shell
from repro.chem.molecule import Atom, Molecule
from repro.core.blocking import BlockSpec


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def make_patterned_stream(
    rng: np.random.Generator,
    n_blocks: int = 20,
    dims: tuple[int, int, int, int] = (6, 6, 6, 6),
    amp: float = 1e-7,
    rel_dev: float = 1e-3,
    zero_blocks: int = 2,
) -> np.ndarray:
    """ERI-like stream: outer-product blocks with small deviations."""
    spec = BlockSpec(dims)
    M, L = spec.num_sb, spec.sb_size
    bra = rng.standard_normal((n_blocks, M, 1))
    ket = rng.standard_normal((n_blocks, 1, L))
    blocks = amp * bra * ket * (1.0 + rel_dev * rng.standard_normal((n_blocks, M, L)))
    blocks[:zero_blocks] = 0.0
    return blocks.reshape(-1)


@pytest.fixture
def patterned_stream(rng) -> np.ndarray:
    return make_patterned_stream(rng)


@pytest.fixture(scope="session")
def tiny_eri_dataset():
    """A small real (dd|dd) dataset from the integral engine (cached)."""
    return generate_dataset(benzene(), "(dd|dd)", n_blocks=30, seed=3)


@pytest.fixture(scope="session")
def small_shell_basis():
    """Four single-primitive shells (s, p, d, f) on spread-out centers."""
    mol = Molecule("probe", (Atom("H", (0, 0, 0)), Atom("H", (0, 0, 2.0))))
    shells = (
        Shell(0, (0.0, 0.0, 0.0), (0.9,), (1.0,)),
        Shell(1, (0.6, -0.4, 0.8), (1.1,), (1.0,)),
        Shell(2, (1.2, 0.5, -0.3), (0.8,), (1.0,)),
        Shell(3, (-0.7, 1.0, 0.4), (0.7,), (1.0,)),
    )
    return BasisSet(mol, shells)


@pytest.fixture(scope="session")
def eri_engine(small_shell_basis):
    return ERIEngine(small_shell_basis)
