"""Documentation freshness: README code blocks must actually run."""

import re
from pathlib import Path

import numpy as np
import pytest

README = Path(__file__).resolve().parent.parent / "README.md"


def python_blocks(text: str) -> list[str]:
    return re.findall(r"```python\n(.*?)```", text, flags=re.S)


@pytest.fixture(scope="module")
def readme_text():
    return README.read_text()


def test_readme_exists_and_mentions_paper(readme_text):
    assert "PaSTRI" in readme_text
    assert "CLUSTER 2018" in readme_text


def test_readme_quickstart_block_runs(readme_text):
    blocks = python_blocks(readme_text)
    assert blocks, "README lost its python examples"
    quickstart = blocks[0]
    # shrink the dataset so the doc test stays fast
    quickstart = quickstart.replace("n_blocks=200", "n_blocks=10")
    namespace: dict = {}
    exec(compile(quickstart, "README-quickstart", "exec"), namespace)
    assert "codec" in namespace


def test_readme_codec_registry_block_runs(readme_text):
    blocks = python_blocks(readme_text)
    assert len(blocks) >= 2
    from repro import benzene, generate_dataset

    ds = generate_dataset(benzene(), "(dd|dd)", n_blocks=5)
    namespace = {"ds": ds, "np": np}
    exec(compile(blocks[1], "README-registry", "exec"), namespace)
    assert isinstance(namespace["blob"], bytes)


def test_readme_store_block_runs(readme_text, tmp_path, monkeypatch):
    blocks = python_blocks(readme_text)
    assert len(blocks) >= 3
    store_block = blocks[2]
    assert "ContainerBackend" in store_block
    # run inside tmp_path so the example's spill/snapshot files are cleaned up
    monkeypatch.chdir(tmp_path)
    rng = np.random.default_rng(0)
    eri_blocks = [rng.standard_normal(6**4) * 1e-7 for _ in range(4)]
    namespace = {"blocks": eri_blocks}
    exec(compile(store_block, "README-store", "exec"), namespace)
    revived = namespace["store"]
    assert len(revived) == len(eri_blocks)
    for q, block in enumerate(eri_blocks):
        assert np.max(np.abs(revived.get(q) - block)) <= 1e-10


def test_docs_reference_real_files():
    root = README.parent
    for rel in (
        "DESIGN.md",
        "EXPERIMENTS.md",
        "docs/FORMAT.md",
        "docs/ALGORITHM.md",
        "docs/LOWRANK.md",
        "docs/OBSERVABILITY.md",
        "docs/SERVICE.md",
    ):
        assert (root / rel).exists(), rel


def test_readme_example_scripts_exist(readme_text):
    for match in re.findall(r"`examples/(\w+\.py)`", readme_text):
        assert (README.parent / "examples" / match).exists(), match
