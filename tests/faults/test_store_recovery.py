"""Store crash recovery: a killed spill-backed store comes back with its data.

``ContainerBackend`` journals every spilled frame to a sidecar file and,
with ``recover=True`` (the default), salvages whatever a previous life of
the spill path left behind — a clean footered container *or* a footerless
file from a killed process.  These tests crash a live store by copying
its on-disk state mid-life (the moment-of-kill snapshot) and reopening a
fresh backend over the copy.
"""

import json
import os
import shutil

import numpy as np
import pytest

from repro.core import PaSTRICompressor
from repro.pipeline import CompressedERIStore, ContainerBackend
from repro.streamio import open_container

EB = 1e-10
DIMS = (6, 6, 6, 6)
BLOCK = 6**4 * 2  # elements per stored block


def _read(path) -> bytes:
    with open(path, "rb") as fh:
        return fh.read()


def _codec():
    return PaSTRICompressor(dims=DIMS)


def _blocks(n, seed=3):
    rng = np.random.default_rng(seed)
    return {(0, 0, 0, i): rng.standard_normal(BLOCK) * 1e-7 for i in range(n)}


def _tiny_store(path, recover=True):
    """Budget small enough that almost everything spills immediately."""
    backend = ContainerBackend(str(path), memory_budget_bytes=2048, recover=recover)
    return CompressedERIStore(_codec(), error_bound=EB, backend=backend)


def _snapshot(src_spill, dst_dir, name="copy.pstf"):
    """Copy spill file + journal: the disk state at the moment of a kill."""
    dst = str(dst_dir / name)
    shutil.copy(src_spill, dst)
    journal = str(src_spill) + ".journal"
    if os.path.exists(journal):
        shutil.copy(journal, dst + ".journal")
    return dst


class TestRecoverFromKill:
    def test_mid_life_kill_recovers_all_spilled_entries(self, tmp_path):
        blocks = _blocks(10)
        spill = tmp_path / "spill.pstf"
        store = _tiny_store(spill)
        for key, block in blocks.items():
            store.put(key, block, dims=DIMS)
        assert store.stats.spills > 0
        # "kill" the process: copy the footerless spill + journal, never close
        copy = _snapshot(spill, tmp_path)

        revived = _tiny_store(copy)
        assert revived.stats.recovered == store.stats.spills
        for key in revived.keys():
            assert np.max(np.abs(revived.get(key) - blocks[key])) <= EB
        revived.close()
        store.close()

    def test_recovered_store_accepts_new_puts_and_closes_clean(self, tmp_path):
        spill = tmp_path / "spill.pstf"
        store = _tiny_store(spill)
        for key, block in _blocks(6).items():
            store.put(key, block, dims=DIMS)
        copy = _snapshot(spill, tmp_path)
        store.close()

        revived = _tiny_store(copy)
        extra = np.random.default_rng(9).standard_normal(BLOCK) * 1e-7
        revived.put((9, 9, 9, 9), extra, dims=DIMS)
        n = len(revived)
        revived.close()
        # clean close: the journal is gone, the container is valid and whole
        assert not os.path.exists(copy + ".journal")
        with open_container(copy) as r:
            keyed = {f.key for f in r.frames if f.key is not None}
            assert json.dumps([9, 9, 9, 9]) in keyed
        reopened = _tiny_store(copy)
        assert len(reopened) == n
        assert np.max(np.abs(reopened.get((9, 9, 9, 9)) - extra)) <= EB
        reopened.close()

    def test_footered_container_recovers_without_journal(self, tmp_path):
        """A cleanly closed spill file reloads from its own footer index."""
        blocks = _blocks(6)
        spill = tmp_path / "spill.pstf"
        store = _tiny_store(spill)
        for key, block in blocks.items():
            store.put(key, block, dims=DIMS)
        store.close()
        assert not os.path.exists(str(spill) + ".journal")

        revived = _tiny_store(spill)
        assert revived.stats.recovered == len(blocks)
        for key, block in blocks.items():
            assert np.max(np.abs(revived.get(key) - block)) <= EB
        revived.close()

    def test_torn_tail_loses_only_the_torn_frame(self, tmp_path):
        spill = tmp_path / "spill.pstf"
        store = _tiny_store(spill)
        for key, block in _blocks(8).items():
            store.put(key, block, dims=DIMS)
        spilled_before = store.stats.spills
        copy = _snapshot(spill, tmp_path)
        store.close()
        with open(copy, "r+b") as fh:
            fh.truncate(os.path.getsize(copy) - 11)  # tear the last frame

        revived = _tiny_store(copy)
        assert revived.stats.recovered == spilled_before - 1
        revived.close()

    def test_recover_false_starts_fresh(self, tmp_path):
        spill = tmp_path / "spill.pstf"
        store = _tiny_store(spill)
        for key, block in _blocks(6).items():
            store.put(key, block, dims=DIMS)
        copy = _snapshot(spill, tmp_path)
        store.close()

        fresh = _tiny_store(copy, recover=False)
        assert fresh.stats.recovered == 0
        assert len(fresh) == 0
        fresh.close()

    def test_torn_header_gives_up_gracefully(self, tmp_path):
        path = tmp_path / "spill.pstf"
        path.write_bytes(b"PSTF\x02")  # header torn after the version byte
        store = _tiny_store(path)
        assert store.stats.recovered == 0
        block = np.random.default_rng(1).standard_normal(BLOCK) * 1e-7
        store.put((0, 0, 0, 0), block, dims=DIMS)
        store.close()
        with open_container(str(path)) as r:  # fresh life overwrote the stub
            assert len(r) >= 1


class TestSnapshotDurability:
    def test_failed_save_never_clobbers_the_old_snapshot(self, tmp_path):
        store = CompressedERIStore(_codec(), error_bound=EB)
        block = np.random.default_rng(2).standard_normal(BLOCK) * 1e-7
        store.put((1, 2, 3, 4), block)
        snap = str(tmp_path / "snap.pstf")
        store.save(snap)
        good = _read(snap)

        class Boom:
            def keys(self):
                raise RuntimeError("backend died mid-save")

        broken = CompressedERIStore(_codec(), error_bound=EB)
        broken.backend.keys = Boom().keys
        with pytest.raises(RuntimeError, match="mid-save"):
            broken.save(snap)
        assert _read(snap) == good
        loaded = CompressedERIStore.load(snap)
        assert np.max(np.abs(loaded.get((1, 2, 3, 4)) - block)) <= EB


class TestServerRestart:
    def test_restarted_server_recovers_spilled_entries(self, tmp_path):
        """The ``pastri serve`` restart path, without the network layer."""
        from repro.service.server import CompressionServer, ServerConfig

        spill = str(tmp_path / "svc-spill.pstf")
        config = ServerConfig(
            codec_name="pastri",
            codec_kwargs={"dims": list(DIMS)},
            error_bound=EB,
            spill_path=spill,
            memory_budget_bytes=2048,
        )
        first = CompressionServer(config)
        blocks = _blocks(8, seed=5)
        for key, block in blocks.items():
            first.store.put(key, block, dims=DIMS)
        spilled = first.store.stats.spills
        assert spilled > 0
        copy = _snapshot(spill, tmp_path, "svc-killed.pstf")
        first.store.close()

        killed_config = ServerConfig(
            codec_name="pastri",
            codec_kwargs={"dims": list(DIMS)},
            error_bound=EB,
            spill_path=copy,
            memory_budget_bytes=2048,
        )
        second = CompressionServer(killed_config)
        stats = second._store_stats()
        assert stats["recovered"] == spilled
        for key in second.store.keys():
            assert np.max(np.abs(second.store.get(key) - blocks[key])) <= EB
        second.store.close()

    def test_spill_recover_false_is_respected(self, tmp_path):
        from repro.service.server import CompressionServer, ServerConfig

        spill = str(tmp_path / "svc-spill.pstf")
        config = ServerConfig(
            codec_name="pastri",
            codec_kwargs={"dims": list(DIMS)},
            error_bound=EB,
            spill_path=spill,
            memory_budget_bytes=2048,
        )
        first = CompressionServer(config)
        for key, block in _blocks(6, seed=6).items():
            first.store.put(key, block, dims=DIMS)
        first.store.close()

        second = CompressionServer(
            ServerConfig(
                codec_name="pastri",
                codec_kwargs={"dims": list(DIMS)},
                error_bound=EB,
                spill_path=spill,
                memory_budget_bytes=2048,
                spill_recover=False,
            )
        )
        assert second._store_stats()["recovered"] == 0
        assert len(second.store) == 0
        second.store.close()
