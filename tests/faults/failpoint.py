"""A failpoint file wrapper: misbehave after a byte budget is spent.

:class:`FailpointFile` wraps a real binary file object and lets a test
decide exactly where a write path dies:

* ``mode="raise"`` — writes succeed until ``fail_after`` bytes have been
  written; the write that crosses the budget persists only the bytes that
  fit (a short write, like a full disk) and then raises ``OSError``
  (ENOSPC).  Every later write raises too.
* ``mode="silent"`` — same budget, but past it the wrapper *pretends* the
  write succeeded while persisting nothing (the crossing write persists
  its in-budget prefix).  This models a process killed with dirty
  user-space buffers: the writer believes everything landed, the disk
  holds a prefix.

Both modes leave on disk precisely the first ``fail_after`` bytes of the
stream, so a test can place the kill point at any structural boundary of
a PSTF container (mid-header, mid-frame, sentinel, index, trailer) and
assert what salvage recovers.
"""

import errno


class FailpointFile:
    """Binary-file wrapper that fails after ``fail_after`` written bytes."""

    def __init__(self, fh, fail_after: int, mode: str = "raise") -> None:
        if mode not in ("raise", "silent"):
            raise ValueError(f"unknown failpoint mode {mode!r}")
        self.fh = fh
        self.remaining = int(fail_after)
        self.mode = mode
        self.tripped = False
        self.written = 0  # bytes actually persisted to the underlying file

    def write(self, data) -> int:
        data = bytes(data)
        if not self.tripped and len(data) <= self.remaining:
            self.remaining -= len(data)
            self.written += len(data)
            return self.fh.write(data)
        # the budget runs out inside this buffer: persist the prefix only
        if not self.tripped:
            prefix = data[: self.remaining]
            if prefix:
                self.fh.write(prefix)
                self.written += len(prefix)
            self.remaining = 0
            self.tripped = True
        if self.mode == "raise":
            raise OSError(errno.ENOSPC, "failpoint: no space left on device")
        return len(data)  # silent mode: lie, like a kill with dirty buffers

    # -- pass-throughs the writer/reader stack touches ----------------------

    def flush(self) -> None:
        self.fh.flush()

    def seek(self, *args) -> int:
        return self.fh.seek(*args)

    def tell(self) -> int:
        return self.fh.tell()

    def seekable(self) -> bool:
        return self.fh.seekable()

    def read(self, *args):
        return self.fh.read(*args)

    def fileno(self) -> int:
        # refuse, so fsync paths treat us like a non-file stream
        raise OSError("failpoint file has no os-level descriptor")

    def close(self) -> None:
        self.fh.close()

    @property
    def closed(self) -> bool:
        return self.fh.closed

    def __enter__(self) -> "FailpointFile":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
