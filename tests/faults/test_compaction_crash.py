"""Compaction crash matrix: a kill at any stage loses no live data.

``ContainerBackend.compact`` rewrites the spill container through the
same atomic-commit machinery as a normal save (footered tmp file,
``os.replace``, journal rewrite, footer truncation for resumed appends).
``backend._compact_hook`` is the seam: these tests raise at every
structural stage, snapshot the disk exactly as a killed process would
leave it, and require a fresh store over the snapshot to serve every
live key within the error bound.
"""

import os
import shutil

import numpy as np
import pytest

from repro.core import PaSTRICompressor
from repro.pipeline import CompressedERIStore, ContainerBackend

EB = 1e-10
DIMS = (6, 6, 6, 6)
BLOCK = 6**4 * 2

STAGES = ["begin", "mid_copy", "after_replace", "after_journal", "after_resume"]


class _Kill(RuntimeError):
    pass


def _blocks(n, seed=7):
    rng = np.random.default_rng(seed)
    return {(0, 0, 0, i): rng.standard_normal(BLOCK) * 1e-7 for i in range(n)}


def _store(path):
    backend = ContainerBackend(str(path), memory_budget_bytes=2048)
    return CompressedERIStore(
        PaSTRICompressor(dims=DIMS), error_bound=EB, backend=backend
    )


def _populate_with_garbage(store, blocks):
    """Fill the store, then overwrite half the keys so dead frames exist."""
    for key, block in blocks.items():
        store.put(key, block, dims=DIMS)
    for key in list(blocks)[::2]:
        store.put(key, blocks[key], dims=DIMS)  # orphans the first frame
    assert store.backend._dead_bytes > 0


def _snapshot(spill, tmp_path, name):
    dst = str(tmp_path / name)
    shutil.copy(str(spill), dst)
    journal = str(spill) + ".journal"
    if os.path.exists(journal):
        shutil.copy(journal, dst + ".journal")
    return dst


@pytest.mark.parametrize("stage", STAGES)
def test_kill_at_stage_loses_nothing(tmp_path, stage):
    blocks = _blocks(10)
    spill = tmp_path / "spill.pstf"
    store = _store(spill)
    _populate_with_garbage(store, blocks)

    def hook(s):
        if s == stage:
            raise _Kill(stage)

    store.backend._compact_hook = hook
    with pytest.raises(_Kill):
        store.backend.compact()

    # the "kill": copy whatever is on disk at the moment of the raise and
    # abandon the wounded store without closing it
    copy = _snapshot(spill, tmp_path, f"killed_{stage}.pstf")

    revived = _store(copy)
    with revived:
        assert set(revived.keys()) >= set(blocks)
        for key, block in blocks.items():
            assert np.max(np.abs(revived.get(key) - block)) <= EB


@pytest.mark.parametrize("stage", STAGES)
def test_killed_compaction_can_be_compacted_again(tmp_path, stage):
    """Recovery then a clean compaction: second attempt completes fully."""
    blocks = _blocks(8)
    spill = tmp_path / "spill.pstf"
    store = _store(spill)
    _populate_with_garbage(store, blocks)
    store.backend._compact_hook = lambda s: (_ for _ in ()).throw(
        _Kill(s)
    ) if s == stage else None
    with pytest.raises(_Kill):
        store.backend.compact()
    copy = _snapshot(spill, tmp_path, f"again_{stage}.pstf")

    revived = _store(copy)
    with revived:
        revived.backend.compact()  # no hook: runs to completion
        assert revived.stats.compactions == 1
        for key, block in blocks.items():
            assert np.max(np.abs(revived.get(key) - block)) <= EB
        # post-compaction the container carries no dead frames
        assert revived.backend._dead_bytes == 0
    # clean close leaves a valid footered container and no journal
    assert not os.path.exists(copy + ".journal")

    reopened = _store(copy)
    with reopened:
        for key, block in blocks.items():
            assert np.max(np.abs(reopened.get(key) - block)) <= EB


def test_completed_compaction_survives_a_subsequent_kill(tmp_path):
    """Frames written after a compaction recover like any others."""
    blocks = _blocks(6)
    spill = tmp_path / "spill.pstf"
    store = _store(spill)
    _populate_with_garbage(store, blocks)
    store.backend.compact()
    extra_key = (9, 9, 9, 9)
    extra = np.random.default_rng(5).standard_normal(BLOCK) * 1e-7
    store.put(extra_key, extra, dims=DIMS)
    store.backend._flush_pending()
    copy = _snapshot(spill, tmp_path, "post_compact_kill.pstf")
    store.close()

    revived = _store(copy)
    with revived:
        for key, block in {**blocks, extra_key: extra}.items():
            assert np.max(np.abs(revived.get(key) - block)) <= EB
