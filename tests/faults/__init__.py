"""Fault-injection harness: crash the storage stack on purpose, then recover."""
