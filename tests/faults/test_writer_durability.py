"""Durability contract of ``ContainerWriter``: flush, fsync, atomic commit.

Regression coverage for the PR-5 bug sweep: ``close()`` used to emit the
footer without ever flushing the handle, and ``__exit__`` used to skip
``close()`` silently on an in-flight exception — losing the summary and
leaving an unmarked partial file.  These tests pin the fixed contract.
"""

import io
import os

import numpy as np
import pytest

from repro.core import PaSTRICompressor
from repro.errors import FormatError
from repro.streamio import ContainerWriter, open_container, salvage_container

from tests.faults.failpoint import FailpointFile

EB = 1e-10
DIMS = (2, 2, 2, 2)


def _read(path) -> bytes:
    with open(path, "rb") as fh:
        return fh.read()


def _codec():
    return PaSTRICompressor(dims=DIMS)


def _chunk(seed=0):
    return np.random.default_rng(seed).standard_normal(16 * 8) * 1e-7


class _FlushProbe(io.BytesIO):
    """BytesIO that records how many bytes were in the buffer at each flush."""

    def __init__(self):
        super().__init__()
        self.flushed_at: list[int] = []

    def flush(self):
        self.flushed_at.append(self.tell())
        super().flush()


class TestCloseFlushes:
    def test_close_flushes_after_the_footer(self):
        """S1 regression: the flush must cover the footer, not precede it."""
        fh = _FlushProbe()
        w = ContainerWriter(fh, _codec(), EB)
        w.append(_chunk(), key="a")
        w.close()
        assert fh.flushed_at, "close() never flushed the handle"
        assert fh.flushed_at[-1] == len(fh.getvalue())

    def test_close_fsyncs_when_asked(self, tmp_path, monkeypatch):
        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd)))
        path = str(tmp_path / "c.pstf")
        with ContainerWriter.create(path, _codec(), EB, fsync=True) as w:
            w.append(_chunk())
        assert synced, "fsync=True close() never called os.fsync"

    def test_no_fsync_by_default_on_plain_writer(self, monkeypatch):
        synced = []
        monkeypatch.setattr(os, "fsync", lambda fd: synced.append(fd))
        w = ContainerWriter(io.BytesIO(), _codec(), EB)
        w.append(_chunk())
        w.close()
        assert not synced

    def test_double_close_raises(self):
        w = ContainerWriter(io.BytesIO(), _codec(), EB)
        w.close()
        with pytest.raises(FormatError, match="already closed"):
            w.close()


class TestAtomicCommit:
    def test_clean_close_commits_and_removes_tmp(self, tmp_path):
        path = str(tmp_path / "c.pstf")
        with ContainerWriter.create(path, _codec(), EB) as w:
            w.append(_chunk(), key="a")
        assert os.path.exists(path)
        assert not os.path.exists(path + ".tmp")
        with open_container(path) as r:
            assert len(r) == 1 and r.frames[0].key == "a"

    def test_crashed_create_never_shadows_the_old_file(self, tmp_path):
        path = str(tmp_path / "c.pstf")
        with ContainerWriter.create(path, _codec(), EB) as w:
            w.append(_chunk(0))
        good = _read(path)

        with pytest.raises(RuntimeError, match="boom"):
            with ContainerWriter.create(path, _codec(), EB) as w:
                w.append(_chunk(1))
                w.append(_chunk(2))
                raise RuntimeError("boom")
        # the good container is untouched; the partial sits in .tmp
        assert _read(path) == good
        assert os.path.exists(path + ".tmp")
        report = salvage_container(path + ".tmp")
        assert report.frames_recovered == 2
        with open_container(path + ".tmp") as r:
            assert np.max(np.abs(r.read_frame(0) - _chunk(1))) <= EB

    def test_non_atomic_create_writes_in_place(self, tmp_path):
        path = str(tmp_path / "c.pstf")
        with ContainerWriter.create(path, _codec(), EB, atomic=False) as w:
            w.append(_chunk())
        assert os.path.exists(path)
        assert not os.path.exists(path + ".tmp")


class TestExitSemantics:
    def test_exit_reraises_and_leaves_salvageable_prefix(self):
        """S2 regression: the exception must escape, the prefix must survive."""
        fh = _FlushProbe()
        with pytest.raises(ValueError, match="mid-stream"):
            with ContainerWriter(fh, _codec(), EB) as w:
                w.append(_chunk())
                raise ValueError("mid-stream")
        assert not hasattr(w, "summary")  # never footered
        assert fh.flushed_at, "abort() must flush the partial stream"
        raw = fh.getvalue()
        assert b"PSTFIDX2" not in raw

    def test_abort_is_idempotent_and_close_after_abort_raises(self):
        w = ContainerWriter(io.BytesIO(), _codec(), EB)
        w.append(_chunk())
        w.abort()
        w.abort()
        with pytest.raises(FormatError, match="already closed"):
            w.close()

    def test_enospc_mid_frame_leaves_recoverable_prefix(self, tmp_path):
        """A full disk mid-append: earlier frames stay salvageable."""
        path = str(tmp_path / "spill.pstf")
        codec = _codec()
        probe = ContainerWriter(io.BytesIO(), codec, EB)
        first = probe.append(_chunk(0))
        budget = first.offset + first.length + 30  # dies inside frame 2
        with open(path, "wb") as raw:
            fp = FailpointFile(raw, budget, mode="raise")
            with pytest.raises(OSError, match="failpoint"):
                with ContainerWriter(fp, codec, EB) as w:
                    w.append(_chunk(0))
                    w.append(_chunk(1))
        report = salvage_container(path)
        assert report.frames_recovered == 1
        with open_container(path) as r:
            assert np.max(np.abs(r.read_frame(0) - _chunk(0))) <= EB

    def test_resume_continues_a_salvaged_container(self, tmp_path):
        """The store's recovery primitive: salvage, resume, close, reopen."""
        path = str(tmp_path / "c.pstf")
        codec = _codec()
        with open(path, "wb") as fh:
            w = ContainerWriter(fh, codec, EB)
            w.append(_chunk(0), key="a")
            w.append(_chunk(1), key="b")
            w.close()
        with open_container(path) as r:
            frames, end = list(r.frames), max(
                f.offset + f.length for f in r.frames
            )
        with open(path, "r+b") as fh:
            fh.truncate(end)
            fh.seek(end)
            w = ContainerWriter.resume(fh, codec, EB, frames=frames, pos=end)
            w.append(_chunk(2), key="c")
            w.close()
        with open_container(path) as r:
            assert [f.key for f in r.frames] == ["a", "b", "c"]
            for i in range(3):
                assert np.max(np.abs(r.read_frame(i) - _chunk(i))) <= EB
