"""Crash-recovery matrix: kill the writer at every phase, salvage, verify.

Each case writes the same 5-frame stream through a silent
:class:`~tests.faults.failpoint.FailpointFile` whose byte budget places
the kill at a chosen structural boundary — mid-header, mid-frame,
exactly after a frame, mid-sentinel, mid-index, mid-trailer — so the
on-disk file is byte-for-byte what a SIGKILL at that instant leaves.
``salvage_container`` must then recover *exactly* the fully-written
frames, the salvaged container must satisfy ``open_container`` with every
CRC passing, and the decoded frames must sit within the error bound of
the original data.  A valid container must come through fsck untouched.
"""

import os

import numpy as np
import pytest

from repro.core import PaSTRICompressor
from repro.errors import FormatError
from repro.streamio import ContainerWriter, open_container, salvage_container

from tests.faults.failpoint import FailpointFile

EB = 1e-10
DIMS = (2, 2, 2, 2)
N_FRAMES = 5
_TRAILER = 4 + 8 + 8  # index crc32 + index length + b"PSTFIDX2"


def _read(path) -> bytes:
    with open(path, "rb") as fh:
        return fh.read()


def _chunks():
    rng = np.random.default_rng(41)
    return [rng.standard_normal(16 * 40) * 1e-7 for _ in range(N_FRAMES)]


def _write_stream(fh) -> None:
    codec = PaSTRICompressor(dims=DIMS)
    w = ContainerWriter(fh, codec, EB)
    for i, c in enumerate(_chunks()):
        w.append(c, key=f"q{i}", dims=DIMS)
    w.close()


@pytest.fixture(scope="module")
def ref(tmp_path_factory):
    """Reference container + its structural byte offsets."""
    path = str(tmp_path_factory.mktemp("crash") / "ref.pstf")
    with open(path, "wb") as fh:
        _write_stream(fh)
    with open_container(path) as r:
        info = {
            "path": path,
            "data_start": r.data_start,
            "frames": [(f.offset, f.length) for f in r.frames],
            "size": os.path.getsize(path),
        }
    last_off, last_len = info["frames"][-1]
    info["sentinel"] = last_off + last_len  # the 8 zero bytes start here
    info["index"] = info["sentinel"] + 8
    info["trailer"] = info["size"] - _TRAILER
    return info


def _kill_at(tmp_path, nbytes: int) -> str:
    """Write the stream through a silent failpoint tripping at ``nbytes``."""
    path = str(tmp_path / f"killed-{nbytes}.pstf")
    with open(path, "wb") as raw:
        fp = FailpointFile(raw, nbytes, mode="silent")
        _write_stream(fp)
    assert os.path.getsize(path) == nbytes  # the kill landed where aimed
    return path


def _salvage_and_verify(path: str, n_expected: int) -> None:
    """fsck ``path`` in place, then check structure, CRCs, and the bound."""
    report = salvage_container(path)
    assert not report.clean
    assert report.frames_recovered == n_expected
    assert report.output_path == path
    chunks = _chunks()
    with open_container(path) as r:
        assert len(r) == n_expected
        for i in range(n_expected):
            r.read_blob(i)  # CRC-checked read
            out = r.read_frame(i)
            assert np.max(np.abs(out - chunks[i])) <= EB


class TestKillMatrix:
    def test_mid_header(self, ref, tmp_path):
        path = _kill_at(tmp_path, ref["data_start"] - 3)
        with pytest.raises(FormatError, match="unrecoverable"):
            salvage_container(path)

    @pytest.mark.parametrize("k", range(N_FRAMES))
    def test_mid_frame(self, ref, tmp_path, k):
        off, length = ref["frames"][k]
        path = _kill_at(tmp_path, off + length // 2)
        _salvage_and_verify(path, n_expected=k)

    @pytest.mark.parametrize("k", [0, N_FRAMES - 1])
    def test_exactly_after_frame(self, ref, tmp_path, k):
        off, length = ref["frames"][k]
        path = _kill_at(tmp_path, off + length)
        _salvage_and_verify(path, n_expected=k + 1)

    def test_mid_sentinel(self, ref, tmp_path):
        path = _kill_at(tmp_path, ref["sentinel"] + 4)
        _salvage_and_verify(path, n_expected=N_FRAMES)

    def test_mid_index(self, ref, tmp_path):
        mid = (ref["index"] + ref["trailer"]) // 2
        path = _kill_at(tmp_path, mid)
        _salvage_and_verify(path, n_expected=N_FRAMES)
        # the surviving index prefix re-keys at least the leading frames
        with open_container(path) as r:
            assert r.frames[0].key == "q0"

    def test_mid_trailer(self, ref, tmp_path):
        path = _kill_at(tmp_path, ref["size"] - 10)
        report = salvage_container(path)
        assert report.frames_recovered == N_FRAMES
        # the whole index survived, so every key and dims tuple does too
        assert report.keys_recovered == N_FRAMES
        with open_container(path) as r:
            assert [f.key for f in r.frames] == [f"q{i}" for i in range(N_FRAMES)]
            assert all(f.dims == DIMS for f in r.frames)


class TestFsckSemantics:
    def test_clean_container_is_a_byte_identical_noop(self, ref):
        before = _read(ref["path"])
        report = salvage_container(ref["path"])
        assert report.clean
        assert report.frames_recovered == N_FRAMES
        assert _read(ref["path"]) == before

    def test_dry_run_writes_nothing(self, ref, tmp_path):
        path = _kill_at(tmp_path, ref["sentinel"] + 4)
        before = _read(path)
        report = salvage_container(path, dry_run=True)
        assert not report.clean
        assert report.output_path is None
        assert report.frames_recovered == N_FRAMES
        assert _read(path) == before

    def test_output_path_leaves_source_untouched(self, ref, tmp_path):
        path = _kill_at(tmp_path, ref["sentinel"] + 4)
        out = str(tmp_path / "salvaged.pstf")
        before = _read(path)
        report = salvage_container(path, output=out)
        assert report.output_path == out
        assert _read(path) == before
        with open_container(out) as r:
            assert len(r) == N_FRAMES

    def test_corrupt_frame_is_dropped_not_salvaged(self, ref, tmp_path):
        # footerless file with frame 1's payload bit-flipped: no index CRC
        # survives to vouch for it, decode-validation must reject it
        path = _kill_at(tmp_path, ref["sentinel"])  # all frames, no footer
        off, length = ref["frames"][1]
        with open(path, "r+b") as fh:
            fh.seek(off + length // 2)
            b = fh.read(1)
            fh.seek(off + length // 2)
            fh.write(bytes([b[0] ^ 0xFF]))
        report = salvage_container(path)
        assert report.frames_dropped == 1
        assert report.frames_recovered == N_FRAMES - 1
        chunks = _chunks()
        survivors = [c for i, c in enumerate(chunks) if i != 1]
        with open_container(path) as r:
            assert len(r) == N_FRAMES - 1
            for i in range(len(r)):
                assert np.max(np.abs(r.read_frame(i) - survivors[i])) <= EB

    def test_unfooted_open_error_mentions_fsck(self, ref, tmp_path):
        path = _kill_at(tmp_path, ref["sentinel"])
        with pytest.raises(FormatError, match=r"pastri fsck"):
            open_container(path)

    def test_open_error_distinguishes_consistent_from_torn(self, ref, tmp_path):
        clean_cut = _kill_at(tmp_path, ref["sentinel"])
        with pytest.raises(FormatError, match="frame-consistent"):
            open_container(clean_cut)
        off, length = ref["frames"][2]
        torn = _kill_at(tmp_path, off + length // 2)
        with pytest.raises(FormatError, match="corruption"):
            open_container(torn)


class TestFsckCLI:
    def test_cli_salvages_and_reports(self, ref, tmp_path, capsys):
        from repro.cli import main

        path = _kill_at(tmp_path, ref["sentinel"] + 4)
        assert main(["fsck", "--dry-run", path]) == 1
        assert main(["fsck", path]) == 0
        out = capsys.readouterr().out
        assert "frames recovered : 5" in out
        assert main(["fsck", path]) == 0  # now clean
        assert "no-op" in capsys.readouterr().out
        with open_container(path) as r:
            assert len(r) == N_FRAMES

    def test_cli_unrecoverable_exits_nonzero(self, ref, tmp_path, capsys):
        from repro.cli import main

        path = _kill_at(tmp_path, ref["data_start"] - 3)
        assert main(["fsck", path]) == 1
        assert "unrecoverable" in capsys.readouterr().err
