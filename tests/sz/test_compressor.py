"""Unit + integration tests for the SZ baseline (repro.sz.compressor)."""

import numpy as np
import pytest

from repro.errors import FormatError, ParameterError
from repro.sz import SZCompressor

EB = 1e-10


def test_roundtrip_error_bound_smooth_signal():
    data = np.sin(np.linspace(0, 50, 30000)) * 1e-6
    c = SZCompressor()
    out = c.decompress(c.compress(data, EB))
    assert np.max(np.abs(out - data)) <= EB


def test_smooth_signal_compresses_well():
    data = np.sin(np.linspace(0, 50, 30000)) * 1e-6
    blob = SZCompressor().compress(data, EB)
    assert data.nbytes / len(blob) > 15


def test_roundtrip_with_unpredictable_points(rng):
    data = np.linspace(0, 1e-6, 5000)
    data[::100] += rng.standard_normal(50) * 1e-5  # spikes -> outliers
    c = SZCompressor(capacity=256)
    out = c.decompress(c.compress(data, EB))
    assert np.max(np.abs(out - data)) <= EB


def test_all_outliers_stream(rng):
    data = rng.standard_normal(2000) * 1.0
    c = SZCompressor(capacity=16)
    out = c.decompress(c.compress(data, 1e-8))
    assert np.max(np.abs(out - data)) <= 1e-8


def test_zero_and_constant_streams():
    c = SZCompressor()
    for data in (np.zeros(5000), np.full(5000, 3.25)):
        blob = c.compress(data, EB)
        assert np.max(np.abs(c.decompress(blob) - data)) <= EB
        assert data.nbytes / len(blob) > 40


@pytest.mark.parametrize("order", [1, 2, 3])
def test_fixed_predictor_orders_roundtrip(order, rng):
    data = rng.standard_normal(4000).cumsum() * 1e-8
    c = SZCompressor(order=order)
    out = c.decompress(c.compress(data, EB))
    assert np.max(np.abs(out - data)) <= EB


def test_capacity_validation():
    for bad in (3, 100, 2**21):
        with pytest.raises(ParameterError):
            SZCompressor(capacity=bad)


def test_single_value_stream():
    c = SZCompressor()
    out = c.decompress(c.compress(np.array([42.0]), EB))
    assert abs(out[0] - 42.0) <= EB


def test_garbage_stream_rejected():
    with pytest.raises(FormatError):
        SZCompressor().decompress(b"garbage bytes everywhere....")


def test_real_eri_dataset(tiny_eri_dataset):
    ds = tiny_eri_dataset
    c = SZCompressor()
    blob = c.compress(ds.data, EB)
    out = c.decompress(blob)
    assert np.max(np.abs(out - ds.data)) <= EB
    assert ds.nbytes / len(blob) > 2  # lossy ratio well above lossless


def test_eb_stored_in_stream(rng):
    data = rng.standard_normal(1000) * 1e-7
    c = SZCompressor()
    blob = c.compress(data, 1e-9)
    # decompress with a fresh instance: EB must come from the stream
    out = SZCompressor(capacity=256).decompress(blob)
    assert np.max(np.abs(out - data)) <= 1e-9
