"""Unit tests for SZ grid quantization and predictors (repro.sz.predictor)."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.sz.predictor import (
    choose_order,
    grid_dequantize,
    grid_quantize,
    reconstruct,
    residuals,
)


def test_grid_roundtrip_error_at_most_eb(rng):
    data = rng.standard_normal(1000) * 1e-6
    eb = 1e-10
    g = grid_quantize(data, eb)
    back = grid_dequantize(g, eb)
    assert np.max(np.abs(back - data)) <= eb


def test_grid_rejects_overflowing_magnitudes():
    with pytest.raises(ParameterError):
        grid_quantize(np.array([1e10]), 1e-10)


@pytest.mark.parametrize("order", [1, 2, 3])
def test_residual_reconstruct_inverse(order, rng):
    g = rng.integers(-10000, 10000, 500)
    assert np.array_equal(reconstruct(residuals(g, order), order), g)


def test_order1_residuals_are_first_differences():
    g = np.array([5, 7, 4, 4], dtype=np.int64)
    assert residuals(g, 1).tolist() == [5, 2, -3, 0]


def test_order2_residuals_vanish_on_linear_ramps():
    g = np.arange(100, dtype=np.int64) * 7
    r = residuals(g, 2)
    assert np.all(r[2:] == 0)


def test_order3_residuals_vanish_on_quadratics():
    i = np.arange(50, dtype=np.int64)
    g = 3 * i * i + 2 * i + 11
    r = residuals(g, 3)
    assert np.all(r[3:] == 0)


def test_invalid_order_rejected():
    g = np.zeros(4, dtype=np.int64)
    for bad in (0, 4):
        with pytest.raises(ParameterError):
            residuals(g, bad)
        with pytest.raises(ParameterError):
            reconstruct(g, bad)


def test_choose_order_prefers_matching_model(rng):
    i = np.arange(5000, dtype=np.int64)
    assert choose_order(i * i, radius=512) >= 2  # quadratic: order 2/3 win
    noisy = rng.integers(-3, 4, 5000).cumsum()
    assert choose_order(noisy, radius=512) == 1  # random walk: order 1 wins
