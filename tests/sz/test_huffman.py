"""Unit tests for canonical Huffman coding (repro.sz.huffman)."""

import numpy as np
import pytest

from repro.bitio import BitReader, BitWriter
from repro.errors import FormatError, ParameterError
from repro.sz.huffman import HuffmanCode, canonical_codes, code_lengths


def roundtrip(symbols, n_alphabet):
    freqs = np.bincount(symbols, minlength=n_alphabet)
    code = HuffmanCode.from_frequencies(freqs)
    w = BitWriter()
    nbits = code.encode(w, symbols)
    bits = np.unpackbits(np.frombuffer(w.getvalue(), np.uint8))
    out, end = code.decode(bits, 0, len(symbols), payload_bits=nbits)
    assert end == nbits
    return out


def test_kraft_inequality_holds(rng):
    freqs = rng.integers(0, 1000, 64)
    freqs[0] = 1  # ensure at least one present
    lengths = code_lengths(freqs)
    present = lengths[lengths > 0]
    assert np.sum(2.0 ** -present) <= 1.0 + 1e-12


def test_more_frequent_symbols_get_shorter_codes():
    freqs = np.array([1000, 100, 10, 1])
    lengths = code_lengths(freqs)
    assert lengths[0] <= lengths[1] <= lengths[2] <= lengths[3]


def test_canonical_codes_are_prefix_free():
    lengths = np.array([1, 2, 3, 3])
    codes = canonical_codes(lengths)
    strings = [format(int(c), f"0{l}b") for c, l in zip(codes, lengths)]
    for i, a in enumerate(strings):
        for j, b in enumerate(strings):
            if i != j:
                assert not b.startswith(a)


def test_single_symbol_alphabet():
    out = roundtrip(np.zeros(20, dtype=np.int64), 1)
    assert np.all(out == 0)


def test_roundtrip_skewed_distribution(rng):
    symbols = np.minimum(rng.geometric(0.3, 5000) - 1, 63).astype(np.int64)
    out = roundtrip(symbols, 64)
    assert np.array_equal(out, symbols)


def test_roundtrip_large_alphabet(rng):
    symbols = rng.integers(0, 4096, 3000)
    out = roundtrip(symbols, 4096)
    assert np.array_equal(out, symbols)


def test_depth_limit_enforced():
    # Fibonacci-like frequencies force deep optimal trees.
    freqs = np.array([1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 377,
                      610, 987, 1597, 2584, 4181, 6765, 10946, 17711], dtype=np.int64)
    lengths = code_lengths(freqs, max_len=8)
    assert lengths.max() <= 8


def test_table_serialisation_roundtrip_sparse(rng):
    freqs = np.zeros(65536, dtype=np.int64)
    freqs[[5, 100, 40000]] = [10, 20, 30]
    code = HuffmanCode.from_frequencies(freqs)
    w = BitWriter()
    code.write_table(w)
    assert w.nbits < 1000  # sparse layout, not 5*65536 bits
    got = HuffmanCode.read_table(BitReader(w.getvalue()))
    assert np.array_equal(got.lengths, code.lengths)
    assert np.array_equal(got.codes, code.codes)


def test_table_serialisation_roundtrip_dense():
    freqs = np.arange(1, 33)
    code = HuffmanCode.from_frequencies(freqs)
    w = BitWriter()
    code.write_table(w)
    got = HuffmanCode.read_table(BitReader(w.getvalue()))
    assert np.array_equal(got.lengths, code.lengths)


def test_encode_rejects_symbol_without_code():
    code = HuffmanCode.from_frequencies(np.array([5, 0, 5]))
    with pytest.raises(ParameterError):
        code.encode(BitWriter(), np.array([1]))


def test_read_table_rejects_corruption():
    with pytest.raises(FormatError):
        HuffmanCode.read_table(BitReader(b"\x00\x00\x00\x00\x00"))


def test_empty_frequencies_rejected():
    with pytest.raises(ParameterError):
        code_lengths(np.zeros(8, dtype=np.int64))
