"""Container-open hardening: truncated/garbage footers fail loud and located.

Before PR 4, opening a torn PSTF-v2 file could escape with a raw
``struct.error``, ``KeyError``, ``UnicodeDecodeError``, or ``TypeError``
depending on exactly where the bytes ran out.  The contract now: every
truncation or footer corruption raises :class:`FormatError` (or another
:class:`ReproError`) whose message names the byte offset of the damage, so
an operator can tell a half-written spill file from a trashed one.
"""

import io
import struct

import numpy as np
import pytest

from repro.core import PaSTRICompressor
from repro.errors import FormatError, ParameterError, ReproError
from repro.streamio import ContainerWriter, compress_stream, open_container

EB = 1e-10


def _container(meta=None) -> bytes:
    rng = np.random.default_rng(7)
    chunks = [rng.standard_normal(6**4 * 2) * 1e-7 for _ in range(3)]
    buf = io.BytesIO()
    compress_stream(chunks, PaSTRICompressor(dims=(6, 6, 6, 6)), EB, buf, meta=meta)
    return buf.getvalue()


def _keyed_container() -> bytes:
    buf = io.BytesIO()
    w = ContainerWriter(buf, PaSTRICompressor(dims=(2, 2, 3, 3)), EB)
    rng = np.random.default_rng(8)
    for i in range(4):
        w.append(rng.standard_normal(36 * 4) * 1e-7, key=f"block-{i}")
    w.close()
    return buf.getvalue()


class TestTruncation:
    def test_zero_byte_file(self):
        with pytest.raises(FormatError, match=r"short magic at byte 0"):
            open_container(io.BytesIO(b""))

    def test_mid_magic_truncation(self):
        raw = _container()
        with pytest.raises(FormatError, match=r"at byte 0 \(wanted 6 bytes, got 4\)"):
            open_container(io.BytesIO(raw[:4]))

    def test_mid_footer_truncation(self):
        # cut inside the 22-byte trailer (crc32 + index length + index magic)
        raw = _container()
        for cut in (3, 10, 15, 21):
            with pytest.raises(FormatError, match=r"at byte \d+"):
                open_container(io.BytesIO(raw[: len(raw) - cut]))

    def test_mid_index_truncation(self):
        # cut halfway through the frame index payload, before the trailer
        raw = _container()
        with pytest.raises(FormatError, match=r"at byte \d+"):
            open_container(io.BytesIO(raw[: len(raw) - 40]))

    def test_every_truncation_point_is_contained(self):
        """No cut anywhere in the file may escape the error hierarchy."""
        raw = _keyed_container()
        step = max(1, len(raw) // 97)  # ~100 cut points incl. both ends
        for cut in list(range(0, len(raw), step)) + [len(raw) - 1]:
            with pytest.raises(ReproError):
                open_container(io.BytesIO(raw[:cut]))

    def test_error_message_names_offset(self):
        raw = _container()
        with pytest.raises(FormatError) as e:
            open_container(io.BytesIO(raw[: len(raw) - 5]))
        assert "byte" in str(e.value)


class TestGarbageFooter:
    def test_trailer_magic_overwritten(self):
        raw = bytearray(_container())
        raw[-4:] = b"XXXX"
        with pytest.raises(FormatError, match=r"missing its frame index at byte \d+"):
            open_container(io.BytesIO(bytes(raw)))

    def test_lying_index_length(self):
        raw = bytearray(_container())
        # trailer layout: [..index..][crc u32][payload_len u64][magic]
        magic_len = len(raw) - raw.rindex(b"PSTFIDX2")
        len_off = len(raw) - magic_len - 8
        raw[len_off:len_off + 8] = struct.pack("<Q", len(raw) * 10)
        with pytest.raises(FormatError, match=r"corrupt index length .* at byte \d+"):
            open_container(io.BytesIO(bytes(raw)))

    def test_corrupt_codec_name_utf8(self):
        raw = bytearray(_container())
        # header layout: magic(6) + name_len(u8?) ... corrupt a name byte
        name_at = raw.index(b"pastri")
        raw[name_at] = 0xFF
        with pytest.raises(FormatError, match=r"byte 6"):
            open_container(io.BytesIO(bytes(raw)))

    def test_corrupt_codec_spec_kwargs(self):
        # A hostile header whose codec kwargs are not valid constructor
        # arguments must raise ParameterError, not TypeError.  The codec
        # is built lazily, so the open succeeds (metadata tools must be
        # able to describe foreign containers) and the error surfaces at
        # first decode.
        raw = _container()
        # same-length swap keeps the JSON framing valid; the kwarg name no
        # longer matches any factory parameter
        bad = raw.replace(b'"metric"', b'"m3tric"', 1)
        assert bad != raw
        r = open_container(io.BytesIO(bad))
        with pytest.raises((ParameterError, FormatError)):
            r.codec

    def test_corrupt_metric_value(self):
        raw = _container()
        bad = raw.replace(b'"er"', b'"ur"', 1)
        assert bad != raw
        r = open_container(io.BytesIO(bad))
        with pytest.raises(ParameterError):
            r.read_frame(0)

    def test_bit_flip_barrage_stays_contained(self):
        """Flipping any single byte in the header/footer region is contained:

        open either succeeds (the flip hit a don't-care byte) or raises
        inside the ReproError hierarchy — never struct.error / KeyError /
        UnicodeDecodeError / TypeError.
        """
        raw = _keyed_container()
        regions = list(range(0, 64)) + list(range(len(raw) - 64, len(raw)))
        for pos in regions:
            mutated = bytearray(raw)
            mutated[pos] ^= 0x5A
            try:
                with open_container(io.BytesIO(bytes(mutated))) as r:
                    len(r)
            except ReproError:
                pass  # contained
