"""Concurrency regression: the store's coarse lock under thread hammering.

Eight threads interleave put/get/get_or_compute/contains against one shared
:class:`CompressedERIStore` (both backends).  Everything must round-trip
within the bound, and the :class:`StoreStats` counters must come out exactly
consistent with the operations performed — lost updates under the old
unlocked implementation showed up precisely here.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core import PaSTRICompressor
from repro.pipeline import CompressedERIStore, ContainerBackend
from tests.conftest import make_patterned_stream

EB = 1e-10
DIMS = (2, 2, 3, 3)
N_THREADS = 8
OPS_PER_THREAD = 25


@pytest.fixture(params=["memory", "container"])
def store(request, tmp_path):
    backend = None
    if request.param == "container":
        # tiny budget: the threads force spills + disk reads concurrently
        backend = ContainerBackend(
            str(tmp_path / "spill.pstf"), memory_budget_bytes=512
        )
    s = CompressedERIStore(
        PaSTRICompressor(dims=DIMS), error_bound=EB, backend=backend,
        hot_cache_blocks=4,
    )
    yield s
    s.close()


def _blocks(n):
    rng = np.random.default_rng(1234)
    return [
        make_patterned_stream(rng, n_blocks=1, dims=DIMS, zero_blocks=0)
        for _ in range(n)
    ]


def test_8_threads_put_get_roundtrip_and_stats(store):
    blocks = _blocks(N_THREADS * OPS_PER_THREAD)
    barrier = threading.Barrier(N_THREADS)
    failures = []

    def worker(tid):
        barrier.wait()  # maximise interleaving
        for i in range(OPS_PER_THREAD):
            key = (tid, i)
            block = blocks[tid * OPS_PER_THREAD + i]
            store.put(key, block, dims=DIMS)
            out = store.get(key)
            err = float(np.max(np.abs(out - block)))
            if err > EB:
                failures.append((key, err))

    with ThreadPoolExecutor(N_THREADS) as ex:
        list(ex.map(worker, range(N_THREADS)))

    assert not failures, f"bound violated under concurrency: {failures[:3]}"
    total = N_THREADS * OPS_PER_THREAD
    # distinct keys: every put is a fresh entry, every get must be counted
    assert store.stats.puts == total
    assert store.stats.gets == total
    assert store.stats.n_entries == total
    assert len(store) == total
    assert store.stats.compressed_bytes > 0
    # re-read everything single-threaded: no entry was lost or torn
    for tid in range(N_THREADS):
        for i in range(OPS_PER_THREAD):
            block = blocks[tid * OPS_PER_THREAD + i]
            assert np.max(np.abs(store.get((tid, i)) - block)) <= EB


def test_threads_overwriting_shared_keys(store):
    """All threads fight over the same 4 keys; entry count must not drift."""
    blocks = _blocks(N_THREADS)
    barrier = threading.Barrier(N_THREADS)

    def worker(tid):
        barrier.wait()
        for i in range(OPS_PER_THREAD):
            key = i % 4
            store.put(key, blocks[tid], dims=DIMS)
            out = store.get(key)  # some thread's block, but a valid one
            assert out.shape == blocks[tid].shape

    with ThreadPoolExecutor(N_THREADS) as ex:
        list(ex.map(worker, range(N_THREADS)))

    total = N_THREADS * OPS_PER_THREAD
    assert store.stats.puts == total
    assert store.stats.gets == total
    assert store.stats.n_entries == 4  # overwrites never double-count
    assert len(store) == 4
    for key in range(4):
        out = store.get(key)
        assert any(np.max(np.abs(out - b)) <= EB for b in blocks)


def test_get_or_compute_under_contention(store):
    """Concurrent get_or_compute on one key computes at most once per miss."""
    block = _blocks(1)[0]
    calls = []
    barrier = threading.Barrier(N_THREADS)

    def compute():
        calls.append(1)
        return block

    def worker(_tid):
        barrier.wait()
        out = store.get_or_compute("shared", compute)
        assert np.max(np.abs(out - block)) <= EB

    with ThreadPoolExecutor(N_THREADS) as ex:
        list(ex.map(worker, range(N_THREADS)))

    # the coarse lock serializes the check-compute-put sequence
    assert len(calls) == 1
    assert store.stats.n_entries == 1
