"""Unit tests for the Fig. 11 cost model (repro.pipeline.workflow)."""

import pytest

from repro.errors import ParameterError
from repro.pipeline.workflow import (
    DEFAULT_N_REUSE,
    GAMESS_GENERATION_RATES,
    ReuseCostModel,
)


def model(config="(dd|dd)", size=1e9):
    return ReuseCostModel(size, config)


def test_original_time_scales_with_reuse():
    t5 = model().evaluate(660e6, 1110e6, 1e-10, n_reuse=5)
    t20 = model().evaluate(660e6, 1110e6, 1e-10, n_reuse=20)
    assert t20.original_time == pytest.approx(4 * t5.original_time)


def test_pastri_infra_beats_recompute_at_paper_rates():
    for config in GAMESS_GENERATION_RATES:
        t = model(config).evaluate(660e6, 1110e6, 1e-10, n_reuse=DEFAULT_N_REUSE)
        assert t.pastri_time < t.original_time
        assert t.speedup > 1.5


def test_normalized_pair():
    t = model().evaluate(660e6, 1110e6, 1e-10)
    orig, pastri = t.normalized()
    assert orig == 1.0
    assert pastri == pytest.approx(t.pastri_time / t.original_time)


def test_single_use_never_wins():
    t = model().evaluate(660e6, 1110e6, 1e-10, n_reuse=1)
    # one use: generation plus compression overhead, decompression never runs
    assert t.decompress_time == 0.0
    assert t.pastri_time > t.original_time


def test_break_even_reuse_formula():
    m = model()
    n = m.break_even_reuse(660e6, 1110e6)
    # evaluate on both sides of the break-even point
    below = m.evaluate(660e6, 1110e6, 1e-10, n_reuse=max(1, int(n)))
    above = m.evaluate(660e6, 1110e6, 1e-10, n_reuse=int(n) + 1)
    assert above.speedup > 1.0
    assert n < DEFAULT_N_REUSE  # the paper's 20 reuses are comfortably past it


def test_break_even_infinite_when_decompress_slower_than_generate():
    m = model()
    slow = GAMESS_GENERATION_RATES["(dd|dd)"] / 2
    assert m.break_even_reuse(660e6, slow) == float("inf")


def test_unknown_config_requires_explicit_rate():
    with pytest.raises(ParameterError):
        ReuseCostModel(1e9, "(pp|pp)")
    m = ReuseCostModel(1e9, "(pp|pp)", generation_rate=100e6)
    assert m.generation_rate == 100e6


def test_invalid_parameters():
    with pytest.raises(ParameterError):
        ReuseCostModel(0, "(dd|dd)")
    with pytest.raises(ParameterError):
        model().evaluate(1e6, 1e6, 1e-10, n_reuse=0)
