"""SegmentedCache unit tests: budgets, scan resistance, admission, modes."""

import pytest

from repro.errors import ParameterError
from repro.pipeline import SegmentedCache


def val(n):
    return b"x" * n


# ---------------------------------------------------------------------------
# construction and basic mechanics


def test_rejects_bad_parameters():
    with pytest.raises(ParameterError):
        SegmentedCache(-1)
    with pytest.raises(ParameterError):
        SegmentedCache(100, policy="mru")


def test_put_get_pop_roundtrip():
    c = SegmentedCache(1000)
    c.put("a", val(10))
    assert "a" in c
    assert c.get("a") == val(10)
    assert c.bytes == 10
    assert c.pop("a") == val(10)
    assert "a" not in c
    assert c.bytes == 0
    assert c.pop("missing") is None
    assert c.get("missing") is None
    assert c.stats.hits == 1 and c.stats.misses == 1


def test_overwrite_replaces_cost():
    c = SegmentedCache(1000)
    c.put("a", val(100))
    c.put("a", val(40))
    assert c.bytes == 40
    assert len(c) == 1
    assert c.get("a") == val(40)


def test_sizeof_hook_controls_cost():
    c = SegmentedCache(3, sizeof=lambda v: 1)  # entry-count budget
    for k in "abcd":
        c.put(k, val(100))
    assert len(c) <= 3


def test_peek_does_not_touch_recency():
    c = SegmentedCache(1000, policy="lru")
    c.put("a", val(10))
    c.put("b", val(10))
    assert c.peek("a") == val(10)
    assert c.peek("zz") is None
    # "a" stays oldest despite the peek: an overflow evicts it first
    c.put("big", val(985))
    assert "a" not in c


# ---------------------------------------------------------------------------
# the budget invariant


@pytest.mark.parametrize("policy", ["2q", "lru"])
def test_budget_never_exceeded(policy):
    c = SegmentedCache(256, policy=policy)
    for i in range(200):
        c.put(i, val(1 + (i * 37) % 90))
        assert c.bytes <= 256
        if i % 3 == 0:
            c.get((i * 7) % 50)
            assert c.bytes <= 256
    assert c.bytes == sum(len(c.peek(k)) for k in c.keys())


def test_zero_budget_holds_nothing_after_shrink():
    c = SegmentedCache(0)
    c.put("a", val(10))
    # the shrink loops keep >=1 entry per segment to avoid livelock on
    # oversized values, but the budget is still respected for multi-entry
    # populations: a second insert displaces the first
    c.put("b", val(10))
    assert len(c) <= 1


# ---------------------------------------------------------------------------
# scan resistance (the reason this class exists)


def test_one_time_scan_cannot_flush_the_working_set():
    c = SegmentedCache(1000)
    hot = [f"hot{i}" for i in range(5)]
    for k in hot:
        c.put(k, val(100))
    for _ in range(10):  # establish frequency
        for k in hot:
            assert c.get(k) is not None
    # a full scan of 200 cold one-shot keys
    for i in range(200):
        c.put(f"scan{i}", val(100))
    survivors = sum(1 for k in hot if k in c)
    assert survivors == len(hot), "scan displaced the frequently-hit set"
    assert c.stats.rejections > 0  # the filter actually did the work


def test_lru_baseline_is_scan_vulnerable():
    """The A/B contrast: plain LRU loses the working set to the same scan."""
    c = SegmentedCache(1000, policy="lru")
    hot = [f"hot{i}" for i in range(5)]
    for k in hot:
        c.put(k, val(100))
    for _ in range(10):
        for k in hot:
            c.get(k)
    for i in range(200):
        c.put(f"scan{i}", val(100))
    assert all(k not in c for k in hot)


def test_cyclic_sweep_pins_a_stable_subset():
    """N-wide cyclic reuse with capacity < N: 2Q keeps a pinned subset hot."""

    def sweep(policy):
        c = SegmentedCache(800, policy=policy)
        for _ in range(8):
            for i in range(20):  # 20 x 100 B over an 800 B budget
                k = f"b{i}"
                if c.get(k) is None:
                    c.put(k, val(100))
        return c.stats.hits

    assert sweep("lru") == 0  # the classic pathology
    assert sweep("2q") > 25


def test_record_access_feeds_admission_without_lookup():
    c = SegmentedCache(400)
    c.put("resident", val(100))
    for _ in range(8):
        c.record_access("resident")
    for i in range(50):
        c.put(f"noise{i}", val(100))
    assert "resident" in c


# ---------------------------------------------------------------------------
# sticky entries and the discard callback


def test_sticky_bypasses_admission_and_unstick_reverts():
    dropped = []
    c = SegmentedCache(400, on_discard=lambda k, v: dropped.append(k))
    for i in range(20):  # established, popular main region
        c.put(f"m{i}", val(100))
        for _ in range(5):
            c.get(f"m{i}")
    c.put("dirty", val(100), sticky=True)
    for i in range(20):  # pressure that would reject a normal newcomer
        c.put(f"n{i}", val(100))
    assert "dirty" in c, "sticky entry was lost to the admission filter"
    c.unstick("dirty")
    # once unstuck it competes normally: hotter newcomers push it out
    for i in range(40):
        c.put(f"p{i}", val(100))
        for _ in range(10):
            c.get(f"p{i}")
    assert "dirty" not in c
    assert "dirty" in dropped


def test_on_discard_fires_for_capacity_departures_only():
    dropped = []
    c = SegmentedCache(300, on_discard=lambda k, v: dropped.append((k, v)))
    c.put("a", val(100))
    c.pop("a")  # explicit removal: no callback
    assert dropped == []
    for i in range(10):
        c.put(i, val(100))
    assert len(dropped) >= 7  # the rest left for capacity reasons
    # every departed value is handed over intact
    assert all(v == val(100) for _, v in dropped)
    total = c.stats.evictions + c.stats.rejections
    assert total == len(dropped)
