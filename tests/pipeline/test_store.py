"""Unit tests for the compressed ERI store (repro.pipeline.store).

The ``store`` fixture runs every test against both backends — the in-memory
dict and the container-backed spill-to-disk variant (with a budget small
enough that entries actually spill) — so the backends are behaviorally
interchangeable by construction.  Backend-specific tests (spill traffic,
save/load, the hot array cache) live in ``test_store_backends.py``.
"""

import numpy as np
import pytest

from repro.core import PaSTRICompressor
from repro.pipeline import CompressedERIStore, ContainerBackend
from tests.conftest import make_patterned_stream

EB = 1e-10


@pytest.fixture(params=["memory", "container"])
def store(request, tmp_path):
    backend = None
    if request.param == "container":
        backend = ContainerBackend(
            str(tmp_path / "spill.pstf"), memory_budget_bytes=2048
        )
    s = CompressedERIStore(
        PaSTRICompressor(dims=(6, 6, 6, 6)), error_bound=EB, backend=backend
    )
    yield s
    s.close()


def test_put_get_roundtrip(store, rng):
    block = make_patterned_stream(rng, n_blocks=1, zero_blocks=0)
    store.put((0, 1, 2, 3), block)
    out = store.get((0, 1, 2, 3))
    assert np.max(np.abs(out - block)) <= EB


def test_get_unknown_key_raises(store):
    with pytest.raises(KeyError):
        store.get("nope")


def test_get_or_compute_computes_once(store, rng):
    block = make_patterned_stream(rng, n_blocks=1, zero_blocks=0)
    calls = []

    def compute():
        calls.append(1)
        return block

    a = store.get_or_compute("k", compute)
    b = store.get_or_compute("k", compute)
    assert len(calls) == 1
    # every access — including the first — sees the decompressed value,
    # so reuse is bit-identical
    assert np.array_equal(a, b)
    assert np.max(np.abs(a - block)) <= EB


def test_stats_accounting(store, rng):
    b1 = make_patterned_stream(rng, n_blocks=1, zero_blocks=0)
    b2 = make_patterned_stream(rng, n_blocks=1, zero_blocks=0)
    store.put("a", b1)
    store.put("b", b2)
    store.get("a")
    st = store.stats
    assert st.n_entries == 2 and st.puts == 2 and st.gets == 1
    assert st.original_bytes == b1.nbytes + b2.nbytes
    assert st.ratio > 5


def test_empty_store_ratio_is_zero():
    """No traffic must not divide by zero (PR 3 satellite fix)."""
    from repro.pipeline.store import StoreStats

    st = StoreStats()
    assert st.compressed_bytes == 0
    assert st.ratio == 0.0


def test_hit_rate_zero_traffic_guard():
    from repro.pipeline.store import StoreStats

    st = StoreStats()
    assert st.hit_rate == 0.0
    st.cache_hits = 3
    st.cache_misses = 1
    assert st.hit_rate == pytest.approx(0.75)


def test_hit_rate_tracks_live_store(rng):
    block = make_patterned_stream(rng, n_blocks=1, zero_blocks=0)
    s = CompressedERIStore(
        PaSTRICompressor(dims=(6, 6, 6, 6)), error_bound=EB, hot_cache_blocks=4
    )
    try:
        assert s.stats.hit_rate == 0.0
        s.put("k", block)
        s.get("k")  # miss: first decompression populates the hot cache
        s.get("k")  # hit
        s.get("k")  # hit
        assert s.stats.cache_hits == 2
        assert s.stats.cache_misses == 1
        assert s.stats.hit_rate == pytest.approx(2 / 3)
    finally:
        s.close()


def test_overwrite_replaces_accounting(store, rng):
    block = make_patterned_stream(rng, n_blocks=1, zero_blocks=0)
    store.put("k", block)
    first = store.stats.compressed_bytes
    store.put("k", block)
    assert store.stats.n_entries == 1
    assert store.stats.compressed_bytes == first


def test_contains_len_keys(store, rng):
    block = make_patterned_stream(rng, n_blocks=1, zero_blocks=0)
    store.put((1, 2, 3, 4), block)
    assert (1, 2, 3, 4) in store
    assert len(store) == 1
    assert list(store.keys()) == [(1, 2, 3, 4)]


def test_get_many_matches_get(store, rng):
    blocks = {
        i: make_patterned_stream(rng, n_blocks=2, zero_blocks=0) for i in range(6)
    }
    for k, b in blocks.items():
        store.put(k, b)
    store.get(0)  # one key already hot: mixed hit/miss path
    out = store.get_many(list(blocks), n_workers=2)
    for k, arr in zip(blocks, out):
        assert np.max(np.abs(arr - blocks[k])) <= EB
        np.testing.assert_array_equal(arr, store.get(k))
    # serial path is behaviorally identical
    np.testing.assert_array_equal(
        store.get_many([3], n_workers=1)[0], store.get(3)
    )


def test_get_many_unknown_key_raises(store, rng):
    store.put("a", make_patterned_stream(rng, n_blocks=1, zero_blocks=0))
    with pytest.raises(KeyError):
        store.get_many(["a", "missing"], n_workers=2)
