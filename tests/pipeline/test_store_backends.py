"""Backend-specific store behavior: spilling, persistence, hot caches."""

import json

import numpy as np
import pytest

from repro.core import PaSTRICompressor
from repro.errors import ParameterError
from repro.pipeline import CompressedERIStore, ContainerBackend, MemoryBackend
from repro.streamio import open_container
from tests.conftest import make_patterned_stream

EB = 1e-10


def codec():
    return PaSTRICompressor(dims=(6, 6, 6, 6))


def fill(store, rng, n=8):
    blocks = {}
    for i in range(n):
        b = make_patterned_stream(rng, n_blocks=1, zero_blocks=0)
        store.put((i, 0), b, dims=(6, 6, 6, 6))
        blocks[(i, 0)] = b
    return blocks


# ---------------------------------------------------------------------------
# spill-to-disk


def test_spill_and_promote(tmp_path, rng):
    path = str(tmp_path / "spill.pstf")
    store = CompressedERIStore(
        codec(), EB, backend=ContainerBackend(path, memory_budget_bytes=1024)
    )
    with store:
        blocks = fill(store, rng)
        assert store.stats.spills > 0, "budget too large to exercise spilling"
        assert len(store) == len(blocks)
        # everything reads back within the bound, whether hot or spilled
        for key, b in blocks.items():
            assert np.max(np.abs(store.get(key) - b)) <= EB
        assert store.stats.disk_reads > 0
        # a freshly promoted key is hot: re-reading it costs no disk traffic
        reads = store.stats.disk_reads
        last = (len(blocks) - 1, 0)
        store.get(last)
        assert store.stats.disk_reads == reads


def test_zero_budget_keeps_at_most_one_hot_entry(tmp_path, rng):
    store = CompressedERIStore(
        codec(),
        EB,
        backend=ContainerBackend(str(tmp_path / "s.pstf"), memory_budget_bytes=0),
    )
    with store:
        blocks = fill(store, rng, n=4)
        assert store.stats.spills >= len(blocks) - 1
        for key, b in blocks.items():
            assert np.max(np.abs(store.get(key) - b)) <= EB


def test_overwriting_a_spilled_key_serves_the_new_value(tmp_path, rng):
    store = CompressedERIStore(
        codec(), EB, backend=ContainerBackend(str(tmp_path / "s.pstf"), 0)
    )
    with store:
        blocks = fill(store, rng, n=3)
        assert (0, 0) not in store.backend._hot  # forced out by the 0 budget
        replacement = make_patterned_stream(rng, n_blocks=1, zero_blocks=0)
        store.put((0, 0), replacement, dims=(6, 6, 6, 6))
        assert np.max(np.abs(store.get((0, 0)) - replacement)) <= EB
        assert store.stats.n_entries == len(blocks)


def test_closed_spill_file_is_a_valid_container(tmp_path, rng):
    path = str(tmp_path / "spill.pstf")
    store = CompressedERIStore(codec(), EB, backend=ContainerBackend(path, 1024))
    blocks = fill(store, rng)
    store.close()
    # the flushed spill file opens standalone, with no codec arguments
    with open_container(path) as r:
        assert r.codec_name == "pastri"
        assert r.meta["role"] == "eri-store-spill"
        assert r.meta["error_bound"] == EB
        served = {}
        for key in r.keys():  # orphaned frames share keys; later frames win
            served[key] = r.get(key)
        assert set(served) == {json.dumps(k) for k in blocks}
        for key, b in blocks.items():
            assert np.max(np.abs(served[json.dumps(key)] - b)) <= EB


def test_backend_outside_a_store_is_rejected(tmp_path):
    backend = ContainerBackend(str(tmp_path / "s.pstf"), 0)
    from repro.pipeline.store import _Entry

    with pytest.raises(ParameterError, match="outside a store"):
        backend.put("k", _Entry(b"x" * 100, 800, None))
        backend.put("k2", _Entry(b"y" * 100, 800, None))  # forces a spill

    with pytest.raises(ParameterError):
        ContainerBackend(str(tmp_path / "t.pstf"), memory_budget_bytes=-1)


# ---------------------------------------------------------------------------
# save / load


@pytest.mark.parametrize("backend_kind", ["memory", "container"])
def test_save_load_roundtrip(tmp_path, rng, backend_kind):
    backend = (
        ContainerBackend(str(tmp_path / "spill.pstf"), memory_budget_bytes=1024)
        if backend_kind == "container"
        else None
    )
    store = CompressedERIStore(codec(), EB, backend=backend)
    with store:
        blocks = fill(store, rng)
        originals = {k: store.get(k) for k in blocks}
        snap = str(tmp_path / "snap.pstf")
        summary = store.save(snap)
        assert summary.n_chunks == len(blocks)

    revived = CompressedERIStore.load(snap)
    assert isinstance(revived.backend, MemoryBackend)
    assert revived.error_bound == EB
    assert revived.codec.spec.dims == (6, 6, 6, 6)
    assert set(revived.keys()) == set(blocks)  # tuple keys revived from JSON
    assert revived.stats.puts == 0  # no traffic served yet
    assert revived.stats.n_entries == len(blocks)
    for key in blocks:
        # blobs are carried verbatim, so reads are bit-identical to the
        # original store's, not merely within the bound
        assert np.array_equal(revived.get(key), originals[key])


def test_load_into_container_backend(tmp_path, rng):
    store = CompressedERIStore(codec(), EB)
    blocks = fill(store, rng, n=5)
    snap = str(tmp_path / "snap.pstf")
    store.save(snap)

    revived = CompressedERIStore.load(
        snap, backend=ContainerBackend(str(tmp_path / "spill.pstf"), 0)
    )
    with revived:
        assert revived.stats.spills > 0  # restoring spilled immediately
        for key, b in blocks.items():
            assert np.max(np.abs(revived.get(key) - b)) <= EB


def test_load_rejects_plain_containers(tmp_path, rng):
    from repro.streamio import compress_dataset_to_file

    path = str(tmp_path / "plain.pstf")
    compress_dataset_to_file([np.zeros(1296)], codec(), EB, path)
    with pytest.raises(ParameterError, match="error bound"):
        CompressedERIStore.load(path)


# ---------------------------------------------------------------------------
# hot decompressed-array cache


def test_hot_array_cache_hits(rng):
    store = CompressedERIStore(codec(), EB, hot_cache_blocks=2)
    blocks = fill(store, rng, n=3)
    store.get((0, 0))
    store.get((0, 0))
    assert store.stats.cache_hits == 1
    assert store.stats.cache_misses == 1
    # capacity 2 blocks: the tier never holds more than its budget, and
    # churning through every key costs at least one eviction
    for key in blocks:
        store.get(key)
    assert len(store._hot_arrays) <= 2
    assert store.stats.array_evictions >= 1
    for key, b in blocks.items():
        assert np.max(np.abs(store.get(key) - b)) <= EB


def test_hot_array_cache_byte_budget(rng):
    """hot_cache_bytes sizes the tier in decompressed bytes, not entries."""
    one_block = 1296 * 8  # (6,6,6,6) quartet, float64
    store = CompressedERIStore(codec(), EB, hot_cache_bytes=2 * one_block)
    blocks = fill(store, rng, n=4)
    for key in blocks:
        store.get(key)
    assert store._hot_arrays.bytes <= 2 * one_block
    assert store.stats.hot_bytes == store._hot_arrays.bytes
    assert store.stats.hot_bytes % one_block == 0
    # repeated reads of a resident key are pure cache hits
    hits = store.stats.cache_hits
    resident = next(iter(store._hot_arrays.keys()))
    store.get(resident)
    assert store.stats.cache_hits == hits + 1


def test_cached_arrays_are_frozen(rng):
    store = CompressedERIStore(codec(), EB, hot_cache_blocks=4)
    fill(store, rng, n=1)
    out = store.get((0, 0))
    with pytest.raises(ValueError):
        out[0] = 1.0


def test_put_invalidates_cached_array(rng):
    store = CompressedERIStore(codec(), EB, hot_cache_blocks=4)
    fill(store, rng, n=1)
    stale = store.get((0, 0))
    replacement = make_patterned_stream(rng, n_blocks=1, zero_blocks=0)
    store.put((0, 0), replacement, dims=(6, 6, 6, 6))
    fresh = store.get((0, 0))
    assert not np.array_equal(fresh, stale)
    assert np.max(np.abs(fresh - replacement)) <= EB
