"""Class-adjacent + profile-driven readahead: issuance and accounting."""

import numpy as np

from repro.core import PaSTRICompressor
from repro.pipeline import CompressedERIStore
from tests.conftest import make_patterned_stream

EB = 1e-10


def make_store(rng, keys, *, depth, blocks=64):
    store = CompressedERIStore(
        PaSTRICompressor(dims=(6, 6, 6, 6)),
        EB,
        hot_cache_blocks=blocks,
        readahead_depth=depth,
    )
    data = {}
    for k in keys:
        b = make_patterned_stream(rng, n_blocks=1, zero_blocks=0)
        store.put(k, b, dims=(6, 6, 6, 6))
        data[k] = b
    return store, data


def test_disabled_by_default(rng):
    store, _ = make_store(rng, range(4), depth=0)
    for k in range(4):
        store.get(k)
    assert store.stats.readahead_issued == 0


def test_class_adjacent_int_keys(rng):
    store, data = make_store(rng, range(6), depth=2)
    store.get(0)  # miss: decode 0, speculatively decode 1 and 2
    assert store.stats.readahead_issued == 2
    assert 1 in store._hot_arrays and 2 in store._hot_arrays
    hits = store.stats.cache_hits
    out = store.get(1)  # served by the prefetch
    assert store.stats.cache_hits == hits + 1
    assert store.stats.readahead_useful == 1
    assert np.max(np.abs(out - data[1])) <= EB


def test_class_adjacent_tuple_keys_step_the_last_index(rng):
    keys = [("dd", 0), ("dd", 1), ("dd", 2), ("ss", 0)]
    store, _ = make_store(rng, keys, depth=2)
    store.get(("dd", 0))
    # neighbors share the class prefix; ("ss", 0) is not a candidate
    assert ("dd", 1) in store._hot_arrays
    assert ("dd", 2) in store._hot_arrays
    assert ("ss", 0) not in store._hot_arrays


def test_missing_neighbors_are_skipped(rng):
    store, _ = make_store(rng, [0, 7], depth=2)  # 1 and 2 don't exist
    store.get(0)
    assert store.stats.readahead_issued == 0


def test_profile_beats_adjacency_once_trained(rng):
    """A learned successor is prefetched even when it is not adjacent."""
    store, _ = make_store(rng, [0, 100], depth=1)
    for _ in range(3):  # train the sequence profile: 0 is followed by 100
        store.get(0)
        store.get(100)
    assert store.stats.seq_profile[0][100] >= 2
    # evict both so the next get(0) is a real miss that triggers readahead
    store._hot_arrays.pop(0)
    store._hot_arrays.pop(100)
    store._prefetched.discard(100)
    issued = store.stats.readahead_issued
    store.get(0)
    assert store.stats.readahead_issued == issued + 1
    assert 100 in store._hot_arrays  # profile candidate won the single slot


def test_prefetch_accounting_balances(rng):
    """issued == useful + wasted + still-pending, and accuracy is in [0,1]."""
    store, _ = make_store(rng, range(10), depth=1, blocks=2)
    for k in (0, 2, 4, 6, 8):  # prefetched odd keys are never read
        store.get(k)
    st = store.stats
    assert st.readahead_issued > 0
    assert st.readahead_issued == (
        st.readahead_useful + st.readahead_wasted + len(store._prefetched)
    )
    assert st.readahead_wasted >= 1  # tiny tier: unused prefetches churned out
    assert 0.0 <= st.readahead_accuracy <= 1.0


def test_profile_fanout_is_bounded(rng):
    from repro.pipeline.store import _PROFILE_FANOUT

    store, _ = make_store(rng, range(_PROFILE_FANOUT + 6), depth=0)
    for succ in range(1, _PROFILE_FANOUT + 6):  # key 0 "precedes" everything
        store.get(0)
        store.get(succ)
    assert len(store.stats.seq_profile[0]) <= _PROFILE_FANOUT


def test_readahead_counts_surface_in_cache_report(rng):
    store, _ = make_store(rng, range(4), depth=2)
    store.get(0)
    store.get(1)
    report = store.format_cache_report()
    assert "readahead" in report
    assert "issued" in report and "useful" in report
