"""Client-side behavior: retry policy math, reconnects, error surfacing."""

import socket
import threading

import numpy as np
import pytest

from repro import telemetry
from repro.errors import (
    DeadlineExceeded,
    ParameterError,
    ProtocolError,
    RemoteError,
    ServerBusyError,
)
from repro.service import (
    RetryPolicy,
    ServerConfig,
    ServiceClient,
    protocol,
    serve_in_thread,
)
from repro.service.client import _is_retryable

EB = 1e-10


@pytest.fixture(autouse=True)
def _clean_telemetry():
    yield
    telemetry.disable()
    telemetry.reset()


class TestRetryPolicy:
    def test_delay_bounded_by_cap(self):
        policy = RetryPolicy(backoff_base_s=0.1, backoff_cap_s=0.5)
        for attempt in range(12):
            assert 0.0 <= policy.delay(attempt) <= 0.5

    def test_delay_window_grows_with_attempt(self):
        policy = RetryPolicy(backoff_base_s=0.01, backoff_cap_s=100.0)
        # full jitter: uniform over [0, base * 2^attempt]; the max over many
        # samples approaches the window top, so late attempts dominate.
        early = max(policy.delay(0) for _ in range(200))
        late = max(policy.delay(8) for _ in range(200))
        assert early <= 0.01
        assert late > 0.1

    def test_delay_respects_server_hint(self):
        policy = RetryPolicy(backoff_base_s=0.001, backoff_cap_s=0.001)
        assert policy.delay(0, hint_s=0.9) >= 0.9

    def test_retryable_classification(self):
        assert _is_retryable(ServerBusyError("full"))
        assert _is_retryable(DeadlineExceeded("late"))
        assert _is_retryable(ConnectionResetError("gone"))
        assert _is_retryable(socket.timeout("slow"))
        assert _is_retryable(OSError("broken"))
        assert not _is_retryable(ProtocolError("garbage"))
        assert not _is_retryable(RemoteError("boom"))
        assert not _is_retryable(ParameterError("bad eb"))
        assert not _is_retryable(ValueError("unrelated"))


class _FlakyServer:
    """Raw socket server that rejects with BUSY ``n_failures`` times, then serves."""

    def __init__(self, n_failures: int) -> None:
        self.n_failures = n_failures
        self.seen = 0
        self._srv = socket.create_server(("127.0.0.1", 0))
        self.port = self._srv.getsockname()[1]
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self) -> None:
        while True:
            try:
                conn, _ = self._srv.accept()
            except OSError:
                return
            with conn:
                fh = conn.makefile("rwb")
                while True:
                    try:
                        frame = protocol.read_frame(fh)
                    except (ProtocolError, OSError):
                        break
                    if frame is None:
                        break
                    header, _ = frame
                    self.seen += 1
                    if self.seen <= self.n_failures:
                        reply = protocol.encode_error(
                            header.get("id"), "BUSY", "warming up",
                            retry_after_s=0.01,
                        )
                    else:
                        reply = protocol.encode_response(
                            header.get("id"), {"status": "ok"}
                        )
                    fh.write(reply)
                    fh.flush()

    def close(self) -> None:
        self._srv.close()


class TestRetryBehavior:
    def test_busy_retries_until_success(self):
        srv = _FlakyServer(n_failures=3)
        try:
            policy = RetryPolicy(max_retries=5, backoff_base_s=0.005, backoff_cap_s=0.02)
            with ServiceClient("127.0.0.1", srv.port, retry=policy) as c:
                assert c.health()["status"] == "ok"
            assert srv.seen == 4  # 3 BUSY + 1 success
        finally:
            srv.close()

    def test_busy_exhausts_retries(self):
        srv = _FlakyServer(n_failures=100)
        try:
            policy = RetryPolicy(max_retries=2, backoff_base_s=0.001, backoff_cap_s=0.002)
            with ServiceClient("127.0.0.1", srv.port, retry=policy) as c:
                with pytest.raises(ServerBusyError):
                    c.health()
            assert srv.seen == 3  # initial try + 2 retries
        finally:
            srv.close()

    def test_connection_refused_retries_then_raises(self):
        # grab a port that is guaranteed closed
        probe = socket.create_server(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        policy = RetryPolicy(max_retries=1, backoff_base_s=0.001, backoff_cap_s=0.002)
        with ServiceClient("127.0.0.1", port, timeout=0.5, retry=policy) as c:
            with pytest.raises(OSError):
                c.health()

    def test_client_reconnects_after_server_restart(self):
        cfg = ServerConfig(codec_kwargs={"dims": [1, 1, 2, 2]}, error_bound=EB)
        h1 = serve_in_thread(cfg)
        policy = RetryPolicy(max_retries=4, backoff_base_s=0.01, backoff_cap_s=0.05)
        c = ServiceClient(h1.host, h1.port, retry=policy)
        try:
            assert c.health()["status"] == "ok"
            h1.stop()
            # restart on the same port; the stale connection dies and the
            # client transparently reconnects under the retry loop
            cfg2 = ServerConfig(
                port=h1.port, codec_kwargs={"dims": [1, 1, 2, 2]}, error_bound=EB
            )
            h2 = serve_in_thread(cfg2)
            try:
                data = np.linspace(0.0, 1.0, 16)
                blob, info = c.compress(data, EB)
                assert info["n"] == 16
                np.testing.assert_allclose(c.decompress(blob), data, atol=EB)
            finally:
                h2.stop()
        finally:
            c.close()
            h1.stop()

    def test_non_retryable_error_surfaces_immediately(self):
        srv = _FlakyServer(n_failures=0)
        try:
            with ServiceClient("127.0.0.1", srv.port) as c:
                c.health()
                first = srv.seen
                with pytest.raises(ParameterError):
                    # server replies ok to everything; force a client-side
                    # BAD_REQUEST by mapping an error reply instead
                    protocol.raise_for_error(
                        {"ok": False, "error": {"code": "BAD_REQUEST", "message": "x"}}
                    )
                assert srv.seen == first  # no retry traffic for typed failures
        finally:
            srv.close()

    def test_response_id_mismatch_is_protocol_error(self):
        srv = socket.create_server(("127.0.0.1", 0))
        port = srv.getsockname()[1]

        def answer_wrong_id():
            conn, _ = srv.accept()
            with conn:
                fh = conn.makefile("rwb")
                frame = protocol.read_frame(fh)
                assert frame is not None
                fh.write(protocol.encode_response(9999, {"status": "ok"}))
                fh.flush()

        t = threading.Thread(target=answer_wrong_id, daemon=True)
        t.start()
        try:
            with ServiceClient("127.0.0.1", port) as c:
                with pytest.raises(ProtocolError, match="id"):
                    c.health()
        finally:
            srv.close()
            t.join(timeout=5)


class TestBufferReuse:
    """The sync client owns one growable receive buffer per connection.

    After warm-up, steady-state round-trips must not allocate: the same
    ``PayloadBuffer`` object (and the same backing ``bytearray``) serves
    every response.
    """

    def test_recv_buffer_object_stable_across_requests(self):
        cfg = ServerConfig(codec_kwargs={"dims": [1, 1, 2, 2]}, error_bound=EB)
        h = serve_in_thread(cfg)
        data = np.linspace(0.0, 1.0, 4096)
        try:
            with ServiceClient(h.host, h.port) as c:
                blob, _ = c.compress(data, EB)  # warm-up
                buf = c._recv_buf
                backing = buf._buf
                cap = buf.capacity
                for _ in range(5):
                    np.testing.assert_allclose(c.decompress(blob), data, atol=EB)
                    c.health()
                assert c._recv_buf is buf
                assert c._recv_buf._buf is backing  # no regrow after warm-up
                assert c._recv_buf.capacity == cap
        finally:
            h.stop()

    def test_no_per_request_allocation_telemetry(self):
        cfg = ServerConfig(codec_kwargs={"dims": [1, 1, 2, 2]}, error_bound=EB)
        h = serve_in_thread(cfg)
        data = np.linspace(0.0, 1.0, 2048)
        try:
            with ServiceClient(h.host, h.port) as c:
                blob, _ = c.compress(data, EB)
                c.decompress(blob)  # reach the high-water mark
                telemetry.enable()
                telemetry.reset()
                for _ in range(10):
                    c.decompress(blob)
                snap = telemetry.metrics_snapshot()
                grows = snap.get("service.buffers.grows", {}).get("value", 0)
                reuses = snap.get("service.buffers.reuses", {}).get("value", 0)
                assert grows == 0  # steady state: zero buffer growth
                assert reuses >= 10
        finally:
            h.stop()
