"""End-to-end server tests: round-trips, batching, backpressure, drain.

Each test boots a real asyncio server on an ephemeral port (via
``serve_in_thread``) and talks to it with the real clients — nothing is
mocked, so these cover the acceptance criteria directly: bound-verified
round-trips, 16 concurrent clients without deadlock, BUSY (not hangs)
under saturation with backoff eventually succeeding, and non-empty
``service.*`` counters from the ``metrics`` op.
"""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import telemetry
from repro.core import PaSTRICompressor
from repro.errors import (
    DeadlineExceeded,
    ParameterError,
    ServerBusyError,
)
from repro.service import RetryPolicy, ServerConfig, ServiceClient, serve_in_thread
from repro.service.client import AsyncServiceClient
from tests.conftest import make_patterned_stream

EB = 1e-10
DIMS = (2, 2, 3, 3)


@pytest.fixture(autouse=True)
def _clean_telemetry():
    """Servers enable the global registry; leave no state for other tests."""
    yield
    telemetry.disable()
    telemetry.reset()


def _data(seed=0, n_blocks=6):
    return make_patterned_stream(np.random.default_rng(seed), n_blocks=n_blocks, dims=DIMS)


def _config(**overrides):
    kwargs = dict(codec_kwargs={"dims": list(DIMS)}, error_bound=EB)
    kwargs.update(overrides)
    return ServerConfig(**kwargs)


class SlowCodec:
    """A codec that sleeps: lets tests hold the batch dispatcher busy."""

    name = "slow-test"

    def __init__(self, delay_s: float = 0.25) -> None:
        self.delay_s = delay_s

    def compress(self, data, error_bound):
        time.sleep(self.delay_s)
        return np.ascontiguousarray(data, dtype="<f8").tobytes()

    def decompress(self, blob):
        return np.frombuffer(blob, dtype="<f8").copy()


class TestRoundTrip:
    def test_compress_decompress_bound_verified(self):
        data = _data()
        with serve_in_thread(_config()) as h:
            with ServiceClient(h.host, h.port) as c:
                blob, info = c.compress(data, EB, dims=DIMS)
                assert info["n"] == data.size
                assert info["compressed_bytes"] == len(blob) > 0
                back = c.decompress(blob)
        assert back.shape == data.shape
        assert np.max(np.abs(back - data)) <= EB

    def test_remote_blob_matches_local_codec(self):
        data = _data(3)
        with serve_in_thread(_config()) as h:
            with ServiceClient(h.host, h.port) as c:
                blob, _ = c.compress(data, EB, dims=DIMS)
        local = PaSTRICompressor(dims=DIMS).compress(data, EB)
        assert blob == local

    def test_store_put_get_stats(self):
        data = _data(1)
        block = data[: 36]
        with serve_in_thread(_config()) as h:
            with ServiceClient(h.host, h.port) as c:
                info = c.put((0, 1, 2, 3), block, dims=DIMS)
                assert info["stored"] is True
                got = c.get((0, 1, 2, 3))
                assert np.max(np.abs(got - block)) <= EB
                stats = c.stats()
                assert stats["puts"] == 1 and stats["gets"] == 1
                assert stats["n_entries"] == 1
                assert stats["error_bound"] == EB
                with pytest.raises(KeyError):
                    c.get((9, 9, 9, 9))

    def test_spill_backed_store(self, tmp_path):
        spill = str(tmp_path / "spill.pstf")
        cfg = _config(spill_path=spill, memory_budget_bytes=64, hot_cache_blocks=0)
        with serve_in_thread(cfg) as h:
            with ServiceClient(h.host, h.port) as c:
                blocks = {i: _data(i)[:36] for i in range(12)}
                for i, b in blocks.items():
                    c.put(i, b, dims=DIMS)
                for i, b in blocks.items():
                    assert np.max(np.abs(c.get(i) - b)) <= EB
                assert c.stats()["spills"] > 0

    def test_health_and_metrics_nonempty(self):
        with serve_in_thread(_config()) as h:
            with ServiceClient(h.host, h.port) as c:
                health = c.health()
                assert health["status"] == "ok"
                assert health["codec"]["name"] == "pastri"
                c.compress(_data(), EB, dims=DIMS)
                metrics = c.metrics()
        service_keys = [k for k in metrics if k.startswith("service.")]
        assert "service.requests" in metrics
        assert metrics["service.requests"]["value"] >= 2
        assert metrics["service.requests.compress"]["value"] == 1
        assert len(service_keys) >= 4

    def test_bad_requests_are_typed(self):
        with serve_in_thread(_config()) as h:
            with ServiceClient(h.host, h.port) as c:
                with pytest.raises(ParameterError):
                    c.compress(_data(), eb=-1.0)  # invalid bound
                with pytest.raises(ParameterError):
                    c._roundtrip("no.such.op")
                with pytest.raises(ParameterError):
                    c._roundtrip("store.put", {"n": 0})  # missing key
                # the connection survives structured errors
                assert c.health()["status"] == "ok"


class TestConcurrency:
    def test_16_concurrent_clients_complete(self):
        datasets = [_data(seed) for seed in range(16)]
        cfg = _config(batch_window_ms=5.0)
        with serve_in_thread(cfg) as h:
            def job(i):
                with ServiceClient(h.host, h.port) as c:
                    blob, _ = c.compress(datasets[i], EB, dims=DIMS)
                    back = c.decompress(blob)
                    return float(np.max(np.abs(back - datasets[i])))
            with ThreadPoolExecutor(16) as ex:
                errors = list(ex.map(job, range(16)))
            with ServiceClient(h.host, h.port) as c:
                batched = c.metrics()["service.batch.requests"]["value"]
        assert len(errors) == 16
        assert max(errors) <= EB
        assert batched == 16  # every compress went through the dispatcher

    def test_microbatching_coalesces(self):
        cfg = _config(batch_window_ms=25.0, batch_max=8)
        datasets = [_data(seed, n_blocks=2) for seed in range(8)]
        with serve_in_thread(cfg) as h:
            def job(i):
                with ServiceClient(h.host, h.port) as c:
                    c.compress(datasets[i], EB, dims=DIMS)
            with ThreadPoolExecutor(8) as ex:
                list(ex.map(job, range(8)))
            with ServiceClient(h.host, h.port) as c:
                m = c.metrics()
        assert m["service.batch.requests"]["value"] == 8
        # 8 near-simultaneous requests inside a 25 ms window cannot need 8
        # separate dispatches; coalescing must have happened.
        assert m["service.batches"]["value"] < 8

    def test_worker_pool_roundtrip(self):
        data = _data(7)
        cfg = _config(n_workers=2, batch_window_ms=10.0)
        with serve_in_thread(cfg) as h:
            def job(i):
                with ServiceClient(h.host, h.port) as c:
                    blob, _ = c.compress(datasets[i], EB, dims=DIMS)
                    return np.max(np.abs(c.decompress(blob) - datasets[i]))
            datasets = [data * (1 + 0.01 * i) for i in range(6)]
            with ThreadPoolExecutor(6) as ex:
                errs = list(ex.map(job, range(6)))
        assert max(errs) <= EB * 1.01  # scaled data, same absolute bound


class TestBackpressure:
    def test_saturation_yields_busy_not_hangs(self):
        cfg = ServerConfig(
            codec=SlowCodec(0.4),
            max_inflight_bytes=2_000,  # fits one ~1.7kB payload, not two
            batch_max=1,
        )
        data = np.arange(200, dtype=np.float64)
        no_retry = RetryPolicy(max_retries=0)
        with serve_in_thread(cfg) as h:
            busy = []

            def hammer():
                try:
                    with ServiceClient(h.host, h.port, retry=no_retry) as c:
                        c.compress(data, EB)
                except ServerBusyError as exc:
                    busy.append(exc)

            threads = [threading.Thread(target=hammer) for _ in range(4)]
            t0 = time.monotonic()
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert time.monotonic() - t0 < 30  # refused, not buffered
            assert busy, "saturating the server must produce BUSY replies"
            assert all(e.retry_after_s > 0 for e in busy)

    def test_backoff_eventually_succeeds(self):
        cfg = ServerConfig(
            codec=SlowCodec(0.2),
            max_inflight_bytes=2_000,
            batch_max=1,
        )
        data = np.arange(200, dtype=np.float64)
        # generous retry budget: 4 clients serialize ~0.8s of slow-codec work
        # behind a one-slot gate, and full jitter can draw near-zero delays,
        # so a tight budget makes this probabilistic — 16 retries is not
        retry = RetryPolicy(max_retries=16, backoff_base_s=0.05, backoff_cap_s=0.4)
        with serve_in_thread(cfg) as h:
            def job(_):
                with ServiceClient(h.host, h.port, retry=retry) as c:
                    blob, info = c.compress(data, EB)
                    return info["n"]
            with ThreadPoolExecutor(4) as ex:
                results = list(ex.map(job, range(4)))
        assert results == [200] * 4  # everyone got through after backing off

    def test_queue_wait_past_deadline_is_dropped(self):
        cfg = ServerConfig(
            codec=SlowCodec(0.5),
            batch_max=1,
            request_deadline_ms=100.0,
            batch_window_ms=0.0,
        )
        data = np.arange(64, dtype=np.float64)
        no_retry = RetryPolicy(max_retries=0)
        with serve_in_thread(cfg) as h:
            outcomes = []

            def job(i):
                time.sleep(0.03 * i)  # ensure ordering: first fills the batch
                try:
                    with ServiceClient(h.host, h.port, retry=no_retry) as c:
                        c.compress(data, EB)
                        outcomes.append("ok")
                except DeadlineExceeded:
                    outcomes.append("deadline")

            threads = [threading.Thread(target=job, args=(i,)) for i in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
        assert outcomes.count("ok") >= 1
        assert "deadline" in outcomes


class TestDrain:
    def test_graceful_drain_finishes_admitted_work(self):
        cfg = _config()
        h = serve_in_thread(cfg)
        data = _data(5)
        with ServiceClient(h.host, h.port) as c:
            blob, _ = c.compress(data, EB, dims=DIMS)
        h.stop()
        assert np.max(np.abs(PaSTRICompressor(dims=DIMS).decompress(blob) - data)) <= EB

    def test_drain_refuses_new_requests(self):
        cfg = ServerConfig(codec=SlowCodec(0.01))
        h = serve_in_thread(cfg)
        try:
            h.stop()
            with pytest.raises((ServerBusyError, ConnectionError, OSError)):
                with ServiceClient(h.host, h.port, retry=RetryPolicy(max_retries=0)) as c:
                    c.health()
        finally:
            h.stop()

    def test_spill_store_finalized_on_drain(self, tmp_path):
        spill = str(tmp_path / "drain.pstf")
        cfg = _config(spill_path=spill, memory_budget_bytes=512, hot_cache_blocks=0)
        h = serve_in_thread(cfg)
        with ServiceClient(h.host, h.port) as c:
            for i in range(6):
                c.put(i, _data(i)[:36], dims=DIMS)
        h.stop()
        # the drained server closed its store; the spill file is a valid container
        from repro.streamio import open_container

        with open_container(spill) as r:
            assert len(r) > 0


class TestAsyncClient:
    def test_async_roundtrip_and_concurrency(self):
        import asyncio

        data = _data(11)
        with serve_in_thread(_config(batch_window_ms=5.0)) as h:
            async def one(i):
                async with AsyncServiceClient(h.host, h.port) as c:
                    blob, _ = await c.compress(data, EB, dims=DIMS)
                    back = await c.decompress(blob)
                    return float(np.max(np.abs(back - data)))

            async def main():
                return await asyncio.gather(*(one(i) for i in range(8)))

            errors = asyncio.run(main())
        assert max(errors) <= EB

    def test_async_store_and_metrics(self):
        import asyncio

        data = _data(13)[:36]
        with serve_in_thread(_config()) as h:
            async def main():
                async with AsyncServiceClient(h.host, h.port) as c:
                    await c.put("block", data, dims=DIMS)
                    got = await c.get("block")
                    stats = await c.stats()
                    metrics = await c.metrics()
                    health = await c.health()
                    return got, stats, metrics, health

            got, stats, metrics, health = asyncio.run(main())
        assert np.max(np.abs(got - data)) <= EB
        assert stats["n_entries"] == 1
        # put + get + stats counted; the metrics request itself is recorded
        # only after its reply is written, so it is not in its own snapshot.
        assert metrics["service.requests"]["value"] >= 3
        assert health["status"] == "ok"
