"""Wire-format unit tests: framing, caps, error mapping, array payloads."""

import io

import numpy as np
import pytest

from repro.errors import (
    DeadlineExceeded,
    ParameterError,
    ProtocolError,
    RemoteError,
    ServerBusyError,
)
from repro.service import protocol


def _roundtrip(frame_bytes):
    return protocol.read_frame(io.BytesIO(frame_bytes))


class TestFraming:
    def test_request_roundtrip(self):
        frame = protocol.encode_request("compress", 7, {"eb": 1e-10}, b"\x01\x02")
        header, payload = _roundtrip(frame)
        assert header == {"op": "compress", "id": 7, "params": {"eb": 1e-10}}
        assert payload == b"\x01\x02"

    def test_response_roundtrip(self):
        frame = protocol.encode_response(3, {"n": 4}, b"busy bytes")
        header, payload = _roundtrip(frame)
        assert header["ok"] is True and header["id"] == 3
        assert payload == b"busy bytes"

    def test_empty_payload(self):
        header, payload = _roundtrip(protocol.encode_request("health", 1))
        assert header["op"] == "health"
        assert payload == b""

    def test_clean_eof_returns_none(self):
        assert protocol.read_frame(io.BytesIO(b"")) is None

    def test_two_frames_sequential(self):
        buf = io.BytesIO(
            protocol.encode_request("health", 1) + protocol.encode_request("health", 2)
        )
        assert protocol.read_frame(buf)[0]["id"] == 1
        assert protocol.read_frame(buf)[0]["id"] == 2
        assert protocol.read_frame(buf) is None

    def test_bad_magic(self):
        with pytest.raises(ProtocolError, match="magic"):
            _roundtrip(b"JUNK" + b"\x00" * 16)

    def test_short_prefix(self):
        with pytest.raises(ProtocolError, match="short prefix"):
            _roundtrip(protocol.MAGIC + b"\x01")

    def test_truncated_header(self):
        frame = protocol.encode_request("health", 1)
        with pytest.raises(ProtocolError):
            _roundtrip(frame[: len(protocol.MAGIC) + 4 + 3])

    def test_truncated_payload(self):
        frame = protocol.encode_request("compress", 1, {}, b"x" * 100)
        with pytest.raises(ProtocolError, match="short payload"):
            _roundtrip(frame[:-10])

    def test_oversized_declared_header(self):
        raw = protocol.MAGIC + (protocol.MAX_HEADER_BYTES + 1).to_bytes(4, "little")
        with pytest.raises(ProtocolError, match="header length"):
            _roundtrip(raw)

    def test_oversized_declared_payload_rejected_before_alloc(self):
        frame = bytearray(protocol.encode_request("compress", 1, {}, b"abc"))
        # patch the payload length field to an absurd value
        hdr_len = int.from_bytes(frame[4:8], "little")
        off = 8 + hdr_len
        frame[off:off + 8] = (1 << 62).to_bytes(8, "little")
        with pytest.raises(ProtocolError, match="payload length"):
            protocol.read_frame(io.BytesIO(bytes(frame)))

    def test_payload_cap_configurable(self):
        frame = protocol.encode_request("compress", 1, {}, b"x" * 64)
        with pytest.raises(ProtocolError, match="exceeds cap 16"):
            protocol.read_frame(io.BytesIO(frame), max_payload=16)

    def test_header_not_json_object(self):
        raw = b'["not", "an", "object"]'
        frame = protocol.MAGIC + len(raw).to_bytes(4, "little") + raw
        frame += (0).to_bytes(8, "little")
        with pytest.raises(ProtocolError, match="JSON object"):
            _roundtrip(frame)

    def test_header_invalid_utf8(self):
        raw = b"\xff\xfe{}"
        frame = protocol.MAGIC + len(raw).to_bytes(4, "little") + raw
        frame += (0).to_bytes(8, "little")
        with pytest.raises(ProtocolError, match="unparseable"):
            _roundtrip(frame)


class TestErrorMapping:
    def test_success_passes_through(self):
        assert protocol.raise_for_error({"ok": True, "result": {"n": 2}}) == {"n": 2}

    @pytest.mark.parametrize(
        "code,exc",
        [
            ("BUSY", ServerBusyError),
            ("SHUTTING_DOWN", ServerBusyError),
            ("DEADLINE", DeadlineExceeded),
            ("BAD_REQUEST", ParameterError),
            ("NOT_FOUND", KeyError),
            ("PROTOCOL", ProtocolError),
            ("INTERNAL", RemoteError),
        ],
    )
    def test_codes_map_to_typed_exceptions(self, code, exc):
        header, _ = _roundtrip(protocol.encode_error(1, code, "boom"))
        with pytest.raises(exc):
            protocol.raise_for_error(header)

    def test_busy_carries_retry_hint(self):
        header, _ = _roundtrip(
            protocol.encode_error(1, "BUSY", "full", retry_after_s=0.75)
        )
        with pytest.raises(ServerBusyError) as e:
            protocol.raise_for_error(header)
        assert e.value.retry_after_s == 0.75

    def test_unknown_code_rejected_at_encode(self):
        with pytest.raises(ParameterError):
            protocol.encode_error(1, "TEAPOT", "short and stout")


class TestArrayPayload:
    def test_roundtrip(self):
        data = np.linspace(-1, 1, 37)
        payload, n = protocol.array_to_payload(data)
        assert n == 37 and len(payload) == 37 * 8
        np.testing.assert_array_equal(protocol.payload_to_array(payload, n), data)

    def test_2d_input_flattens(self):
        payload, n = protocol.array_to_payload(np.ones((3, 4)))
        assert n == 12

    def test_ragged_length_rejected(self):
        with pytest.raises(ProtocolError, match="multiple of 8"):
            protocol.payload_to_array(b"\x00" * 13)

    def test_count_mismatch_rejected(self):
        payload, _ = protocol.array_to_payload(np.zeros(4))
        with pytest.raises(ProtocolError, match="header says 5"):
            protocol.payload_to_array(payload, 5)

    def test_result_is_writable_copy(self):
        payload, n = protocol.array_to_payload(np.zeros(4))
        out = protocol.payload_to_array(payload, n)
        out[0] = 1.0  # frombuffer views are read-only; we need a real array
