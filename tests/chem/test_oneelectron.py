"""Tests for one-electron integrals (repro.chem.oneelectron).

The s-function values are checked against the Szabo & Ostlund H2/STO-3G
reference numbers; higher angular momenta are checked by quadrature,
translational invariance, and operator positivity.
"""

import numpy as np
import pytest

from repro.chem.basis import BasisSet, Shell
from repro.chem.molecule import Atom, Molecule
from repro.chem.oneelectron import (
    build_one_electron_matrices,
    kinetic_block,
    nuclear_attraction_block,
    overlap_block,
)

STO3G_H = ((3.42525091, 0.62391373, 0.16885540), (0.15432897, 0.53532814, 0.44463454))


@pytest.fixture(scope="module")
def h2_basis():
    mol = Molecule("h2", (Atom("H", (0, 0, 0)), Atom("H", (0, 0, 1.4))))
    shells = tuple(Shell(0, a.position, *STO3G_H) for a in mol.atoms)
    return BasisSet(mol, shells)


def test_szabo_ostlund_reference_values(h2_basis):
    """H2/STO-3G at R=1.4 a.u. — the textbook integral table."""
    S, T, V = build_one_electron_matrices(h2_basis)
    assert S[0, 0] == pytest.approx(1.0, abs=1e-10)
    assert S[0, 1] == pytest.approx(0.6593, abs=2e-4)
    assert T[0, 0] == pytest.approx(0.7600, abs=2e-4)
    assert T[0, 1] == pytest.approx(0.2365, abs=2e-4)
    assert V[0, 0] == pytest.approx(-1.8804, abs=2e-4)


def test_matrices_symmetric(h2_basis):
    S, T, V = build_one_electron_matrices(h2_basis)
    for M in (S, T, V):
        assert np.allclose(M, M.T, atol=1e-12)


def test_overlap_quadrature_p_d_pair():
    """<p|d> overlap against brute-force grid integration."""
    sa = Shell(1, (0.0, 0.0, 0.0), (0.9,), (1.0,))
    sb = Shell(2, (0.4, -0.2, 0.6), (0.7,), (1.0,))
    got = overlap_block(sa, sb)

    # quadrature on a uniform grid
    n, lim = 61, 6.0
    x = np.linspace(-lim, lim + 0.6, n)
    X, Y, Z = np.meshgrid(x, x, x, indexing="ij")
    dV = (x[1] - x[0]) ** 3
    from repro.chem.basis import cartesian_components, component_norm_ratios, primitive_norm

    def value(shell, comp_idx):
        lx, ly, lz = cartesian_components(shell.l)[comp_idx]
        cx, cy, cz = shell.center
        r2 = (X - cx) ** 2 + (Y - cy) ** 2 + (Z - cz) ** 2
        _, coefs = shell.contraction()
        norm = component_norm_ratios(shell.l)[comp_idx]
        return (
            norm
            * coefs[0]
            * (X - cx) ** lx
            * (Y - cy) ** ly
            * (Z - cz) ** lz
            * np.exp(-shell.exponents[0] * r2)
        )

    for ca in (0, 2):
        for cb in (0, 3, 5):
            want = float((value(sa, ca) * value(sb, cb)).sum() * dV)
            assert got[ca, cb] == pytest.approx(want, abs=5e-4)


def test_translational_invariance():
    shift = np.array([1.3, -0.8, 2.1])
    sa1 = Shell(2, (0, 0, 0), (0.8,), (1.0,))
    sb1 = Shell(3, (0.5, 0.2, -0.3), (1.1,), (1.0,))
    sa2 = Shell(2, tuple(shift), (0.8,), (1.0,))
    sb2 = Shell(3, tuple(np.array([0.5, 0.2, -0.3]) + shift), (1.1,), (1.0,))
    assert np.allclose(overlap_block(sa1, sb1), overlap_block(sa2, sb2), atol=1e-12)
    assert np.allclose(kinetic_block(sa1, sb1), kinetic_block(sa2, sb2), atol=1e-12)


def test_kinetic_matrix_positive_definite():
    mol = Molecule("m", (Atom("C", (0, 0, 0)), Atom("O", (0, 0, 2.2))))
    shells = (
        Shell(0, (0, 0, 0), (1.2,), (1.0,)),
        Shell(1, (0, 0, 0), (0.8,), (1.0,)),
        Shell(2, (0, 0, 2.2), (0.9,), (1.0,)),
    )
    basis = BasisSet(mol, shells)
    _, T, _ = build_one_electron_matrices(basis)
    assert np.linalg.eigvalsh(T).min() > 0


def test_nuclear_attraction_negative_diagonal():
    mol = Molecule("m", (Atom("N", (0, 0, 0)),))
    shells = (Shell(2, (0, 0, 0), (0.9,), (1.0,)), Shell(0, (0, 0, 0), (1.3,), (1.0,)))
    basis = BasisSet(mol, shells)
    _, _, V = build_one_electron_matrices(basis)
    assert np.all(V.diagonal() < 0)


def test_overlap_matrix_positive_definite_mixed_shells():
    mol = Molecule("m", (Atom("C", (0, 0, 0)), Atom("C", (0, 0, 2.8))))
    shells = (
        Shell(0, (0, 0, 0), (0.5,), (1.0,)),
        Shell(1, (0, 0, 0), (0.7,), (1.0,)),
        Shell(2, (0, 0, 2.8), (0.8,), (1.0,)),
        Shell(3, (0, 0, 2.8), (0.6,), (1.0,)),
    )
    S, _, _ = build_one_electron_matrices(BasisSet(mol, shells))
    assert np.linalg.eigvalsh(S).min() > 0
    assert np.allclose(S.diagonal(), 1.0, atol=1e-10)
