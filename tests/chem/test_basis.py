"""Unit tests for shells and basis sets (repro.chem.basis)."""

import numpy as np
import pytest

from repro.chem import basis as bs
from repro.chem.molecules import benzene
from repro.errors import BasisError


def test_cartesian_component_counts():
    for l in range(6):
        assert len(bs.cartesian_components(l)) == bs.ncart(l) == (l + 1) * (l + 2) // 2


def test_gamess_d_order():
    assert bs.cartesian_components(2) == (
        (2, 0, 0), (0, 2, 0), (0, 0, 2), (1, 1, 0), (1, 0, 1), (0, 1, 1),
    )


def test_gamess_f_order_starts_with_principals():
    f = bs.cartesian_components(3)
    assert f[:3] == ((3, 0, 0), (0, 3, 0), (0, 0, 3))
    assert f[-1] == (1, 1, 1)
    assert all(sum(t) == 3 for t in f)


def test_high_l_components_are_complete():
    g = bs.cartesian_components(4)
    assert len(set(g)) == 15
    assert all(sum(t) == 4 for t in g)


def test_double_factorial():
    assert [bs.double_factorial(n) for n in (-1, 0, 1, 2, 3, 5, 7)] == [1, 1, 1, 2, 3, 15, 105]


def test_primitive_norm_normalises_s_gaussian():
    # <g|g> for normalized s primitive = 1: integral of N^2 exp(-2ar^2) = N^2 (pi/2a)^{3/2}
    a = 0.73
    n = bs.primitive_norm(a, 0)
    assert n * n * (np.pi / (2 * a)) ** 1.5 == pytest.approx(1.0)


def test_component_norm_ratios_d_shell():
    r = bs.component_norm_ratios(2)
    # (2,0,0) is the reference; cross terms xy get sqrt(3!!/1) = sqrt(3)
    assert r[0] == pytest.approx(1.0)
    assert r[3] == pytest.approx(np.sqrt(3.0))


def test_shell_validation():
    with pytest.raises(BasisError):
        bs.Shell(-1, (0, 0, 0), (1.0,), (1.0,))
    with pytest.raises(BasisError):
        bs.Shell(0, (0, 0, 0), (1.0, 2.0), (1.0,))
    with pytest.raises(BasisError):
        bs.Shell(0, (0, 0, 0), (-1.0,), (1.0,))
    with pytest.raises(BasisError):
        bs.Shell(0, (0, 0, 0), (), ())


def test_contraction_is_normalised():
    sh = bs.Shell(2, (0, 0, 0), (0.8, 0.3), (0.6, 0.5))
    alphas, coefs = sh.contraction()
    psum = alphas[:, None] + alphas[None, :]
    s = bs.double_factorial(3) / (2 * psum) ** 2 * (np.pi / psum) ** 1.5
    assert coefs @ s @ coefs == pytest.approx(1.0)


def test_shell_letter_names():
    assert bs.Shell(0, (0, 0, 0), (1.0,), (1.0,)).letter == "s"
    assert bs.Shell(3, (0, 0, 0), (1.0,), (1.0,)).letter == "f"


def test_polarization_basis_heavy_atoms_only():
    basis = bs.polarization_basis(benzene(), "d")
    assert len(basis) == 6
    assert all(sh.l == 2 for sh in basis.shells)
    assert basis.n_basis_functions == 36


def test_polarization_basis_exponent_scales():
    basis = bs.polarization_basis(benzene(), "f", exponent_scale=(1.0, 2.0))
    assert len(basis) == 12
    exps = sorted({sh.exponents[0] for sh in basis.shells})
    assert exps[1] == pytest.approx(2 * exps[0])


def test_polarization_basis_rejects_s():
    with pytest.raises(BasisError):
        bs.polarization_basis(benzene(), "s")


def test_shells_of_type():
    basis = bs.polarization_basis(benzene(), "d")
    assert basis.shells_of_type("d") == list(range(6))
    assert basis.shells_of_type("f") == []


def test_empty_basis_rejected():
    with pytest.raises(BasisError):
        bs.BasisSet(benzene(), ())
