"""Tests for per-class ERI dumps (repro.chem.classdump)."""

import numpy as np
import pytest

from repro.chem.basis_sets import sto3g_basis, water
from repro.chem.classdump import ClassDumpResult, class_dump, compress_class_dump, quartet_class
from repro.errors import ParameterError

EB = 1e-10


@pytest.fixture(scope="module")
def water_dump():
    return class_dump(sto3g_basis(water()), max_blocks_per_class=40)


def test_quartet_class_labels():
    basis = sto3g_basis(water())
    # shells: O 1s(s), O 2s(s), O 2p(p), H 1s, H 1s
    assert quartet_class(basis, (0, 1, 3, 4)) == "(ss|ss)"
    assert quartet_class(basis, (2, 2, 2, 2)) == "(pp|pp)"
    assert quartet_class(basis, (2, 0, 2, 4)) == "(ps|ps)"


def test_dump_covers_expected_classes(water_dump):
    # with s and p shells: every bra/ket in {ss, sp, ps, pp} occurs
    labels = set(water_dump)
    assert "(ss|ss)" in labels
    assert "(pp|pp)" in labels
    assert any("p" in l for l in labels)


def test_class_geometries_are_uniform(water_dump):
    for label, ds in water_dump.items():
        assert ds.config == label
        assert ds.data.size == ds.n_blocks * ds.spec.block_size


def test_block_cap_respected():
    dump = class_dump(sto3g_basis(water()), max_blocks_per_class=5)
    assert all(ds.n_blocks <= 5 for ds in dump.values())


def test_compress_class_dump_bounds_and_ratio(water_dump):
    res = compress_class_dump(water_dump, EB)
    assert isinstance(res, ClassDumpResult)
    assert res.max_abs_error <= EB
    # water/STO-3G is a tiny dump (single-digit blocks per class with
    # near-unit integrals), so only modest gains are possible here; the
    # realistic-scale check lives in test_glutamine_dump_compresses_well.
    assert res.ratio > 1.3
    assert set(res.per_class) == set(water_dump)
    for stats in res.per_class.values():
        assert stats["max_error"] <= EB
        assert stats["ratio"] > 0.8


def test_whole_dump_totals_consistent(water_dump):
    res = compress_class_dump(water_dump, EB)
    assert res.original_bytes == sum(s["bytes"] for s in res.per_class.values())
    assert res.compressed_bytes == sum(s["compressed"] for s in res.per_class.values())


def test_empty_dump_rejected():
    with pytest.raises(ParameterError):
        compress_class_dump({}, EB)


def test_glutamine_dump_compresses_well():
    """A molecule-scale all-electron dump reaches ERI-typical ratios."""
    from repro.chem.molecules import glutamine

    dump = class_dump(sto3g_basis(glutamine()), max_blocks_per_class=25, seed=1)
    assert len(dump) >= 6  # many shell-letter classes
    res = compress_class_dump(dump, EB)
    assert res.max_abs_error <= EB
    assert res.ratio > 4.0
