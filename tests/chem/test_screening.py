"""Unit tests for Schwarz screening (repro.chem.screening)."""

import numpy as np

from repro.chem.screening import quartet_bound, schwarz_matrix, screen_quartets


def test_schwarz_matrix_is_symmetric_positive(eri_engine):
    Q = schwarz_matrix(eri_engine, [0, 1, 2, 3])
    assert np.allclose(Q, Q.T)
    assert np.all(Q > 0)


def test_schwarz_bound_dominates_actual_extrema(eri_engine):
    Q = schwarz_matrix(eri_engine, [0, 1, 2, 3])
    for quartet in [(0, 1, 2, 3), (2, 2, 3, 3), (0, 3, 1, 2)]:
        block = eri_engine.shell_quartet(*quartet)
        assert np.abs(block).max() <= quartet_bound(Q, *quartet) * (1 + 1e-9)


def test_screen_quartets_filters_by_threshold():
    Q = np.array([[1.0, 1e-4], [1e-4, 1.0]])
    quartets = [(0, 0, 0, 0), (0, 1, 0, 1), (0, 0, 1, 1)]
    kept = screen_quartets(Q, quartets, threshold=1e-6)
    assert (0, 0, 0, 0) in kept and (0, 0, 1, 1) in kept
    assert (0, 1, 0, 1) not in kept  # bound 1e-8 below threshold


def test_screen_quartets_zero_threshold_keeps_all():
    Q = np.ones((2, 2))
    quartets = [(0, 0, 0, 0), (1, 1, 1, 1)]
    assert screen_quartets(Q, quartets, 0.0) == quartets
