"""Unit tests for the Hermite E/R recursions (repro.chem.hermite)."""

import numpy as np
import pytest

from repro.chem.boys import boys
from repro.chem.hermite import e_coefficients, r_tensor


def test_e00_is_gaussian_prefactor():
    a = np.array([0.9])
    b = np.array([1.3])
    A = np.array([0.0, 0.0, 0.0])
    B = np.array([1.0, -0.5, 0.2])
    Ex, Ey, Ez = e_coefficients(0, 0, a, b, A, B)
    mu = a[0] * b[0] / (a[0] + b[0])
    assert Ex[0, 0, 0, 0] == pytest.approx(np.exp(-mu * 1.0))
    assert Ey[0, 0, 0, 0] == pytest.approx(np.exp(-mu * 0.25))
    assert Ez[0, 0, 0, 0] == pytest.approx(np.exp(-mu * 0.04))


def test_e_sum_gives_overlap():
    # The t=0 coefficient integrates the product: S = E_0^{ij} (pi/p)^{1/2} per axis.
    a = np.array([0.7])
    b = np.array([0.4])
    A = np.array([0.0, 0.0, 0.0])
    B = np.array([0.9, 0.0, 0.0])
    Ex, _, _ = e_coefficients(1, 1, a, b, A, B)
    p = a[0] + b[0]
    S_x = Ex[0, 1, 1, 0] * np.sqrt(np.pi / p)
    # Analytic <x_A | x_B> overlap along one axis:
    mu = a[0] * b[0] / p
    xab = -0.9
    xpa = -(b[0] / p) * xab
    xpb = (a[0] / p) * xab
    want = (xpa * xpb + 0.5 / p) * np.exp(-mu * xab * xab) * np.sqrt(np.pi / p)
    assert S_x == pytest.approx(want, rel=1e-12)


def test_e_shapes_and_vectorisation():
    a = np.array([0.5, 1.0, 2.0])
    b = np.array([0.8, 0.8, 0.8])
    A = np.zeros(3)
    B = np.array([1.0, 1.0, 1.0])
    Ex, Ey, Ez = e_coefficients(2, 3, a, b, A, B)
    assert Ex.shape == (3, 3, 4, 6)
    # per-pair results equal scalar invocations
    for k in range(3):
        Exk, _, _ = e_coefficients(2, 3, a[k : k + 1], b[k : k + 1], A, B)
        assert np.allclose(Ex[k], Exk[0])


def test_r000_is_boys_times_scale():
    alpha = np.array([0.8])
    PQ = np.array([[1.0, 2.0, -0.5]])
    T = alpha * (PQ**2).sum()
    R = r_tensor(2, 2, 2, alpha, PQ)
    F = boys(0, T)[0]
    assert R[0, 0, 0, 0] == pytest.approx(F[0])


def test_r_symmetry_under_axis_swap():
    alpha = np.array([0.5])
    PQ = np.array([[1.1, 1.1, 1.1]])
    R = r_tensor(3, 3, 3, alpha, PQ)
    assert R[2, 1, 0, 0] == pytest.approx(R[0, 1, 2, 0], rel=1e-12)
    assert R[1, 2, 0, 0] == pytest.approx(R[0, 2, 1, 0], rel=1e-12)


def test_r_odd_orders_vanish_at_origin():
    # At PQ = 0 odd Hermite derivatives are zero.
    R = r_tensor(3, 3, 3, np.array([1.0]), np.zeros((1, 3)))
    assert R[1, 0, 0, 0] == 0.0
    assert R[0, 3, 0, 0] == 0.0
    assert R[1, 1, 1, 0] == 0.0


def test_r_derivative_consistency():
    # R_{t=1} = d/dPQ_x R_{t=0}: check with central differences.
    alpha = np.array([0.9])
    h = 1e-6
    base = np.array([[0.7, -0.4, 1.2]])
    Rp = r_tensor(0, 0, 0, alpha, base + [[h, 0, 0]])[0, 0, 0, 0]
    Rm = r_tensor(0, 0, 0, alpha, base - [[h, 0, 0]])[0, 0, 0, 0]
    R = r_tensor(1, 0, 0, alpha, base)
    assert R[1, 0, 0, 0] == pytest.approx((Rp - Rm) / (2 * h), rel=1e-6)


def test_r_batched_matches_single():
    rng = np.random.default_rng(5)
    alpha = rng.uniform(0.3, 2.0, 4)
    PQ = rng.standard_normal((4, 3))
    R = r_tensor(2, 2, 2, alpha, PQ)
    for k in range(4):
        Rk = r_tensor(2, 2, 2, alpha[k : k + 1], PQ[k : k + 1])
        assert np.allclose(R[..., k], Rk[..., 0], rtol=1e-12)
