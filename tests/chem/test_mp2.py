"""Tests for the MP2 module (repro.chem.mp2)."""

import numpy as np
import pytest

from repro.chem.basis import BasisSet, Shell
from repro.chem.basis_sets import sto3g_basis, water
from repro.chem.molecule import Atom, Molecule
from repro.chem.mp2 import MP2Result, ao_to_mo, mp2_energy
from repro.chem.scf import RHFSolver
from repro.core import PaSTRICompressor
from repro.pipeline import CompressedERIStore

STO3G_H = ((3.42525091, 0.62391373, 0.16885540), (0.15432897, 0.53532814, 0.44463454))


def h2_solver():
    mol = Molecule("h2", (Atom("H", (0, 0, 0)), Atom("H", (0, 0, 1.4))))
    shells = tuple(Shell(0, a.position, *STO3G_H) for a in mol.atoms)
    return RHFSolver(BasisSet(mol, shells))


def test_ao_to_mo_identity_transform(rng):
    eri = rng.standard_normal((3, 3, 3, 3))
    eri = eri + eri.transpose(1, 0, 2, 3)
    assert np.allclose(ao_to_mo(eri, np.eye(3)), eri)


def test_h2_minimal_basis_closed_form():
    """One occupied + one virtual orbital: E2 = (ia|ia)^2 / (2(ei - ea))."""
    solver = h2_solver()
    scf = solver.run()
    res = mp2_energy(solver, scf)
    assert isinstance(res, MP2Result)
    assert res.n_occ == 1 and res.n_virtual == 1

    # independent closed form
    from scipy import linalg

    from repro.chem.oneelectron import build_one_electron_matrices

    S, T, V = build_one_electron_matrices(solver.basis)
    eri = solver.eri_tensor()
    D = scf.density
    F = (
        T + V
        + 2 * np.einsum("pqrs,rs->pq", eri, D)
        - np.einsum("prqs,rs->pq", eri, D)
    )
    eps, C = linalg.eigh(F, S)
    mo = ao_to_mo(eri, C)
    iaia = mo[0, 1, 0, 1]
    closed = iaia**2 / (2 * (eps[0] - eps[1]))
    assert res.correlation_energy == pytest.approx(closed, rel=1e-12)
    assert res.correlation_energy < 0


def test_h2_correlation_magnitude():
    res = mp2_energy(h2_solver())
    # H2/STO-3G at 1.4 a0: correlation ~ -0.013 hartree
    assert -0.03 < res.correlation_energy < -0.005
    assert res.total_energy < res.scf_energy


def test_water_mp2():
    solver = RHFSolver(sto3g_basis(water()))
    res = mp2_energy(solver)
    assert res.n_occ == 5 and res.n_virtual == 2
    assert -0.1 < res.correlation_energy < -0.01
    assert res.total_energy == pytest.approx(res.scf_energy + res.correlation_energy)


def test_mp2_through_compressed_store_matches_direct():
    """The paper's claim: assemble MO integrals from stored (lossy) ERIs."""
    direct = mp2_energy(h2_solver())
    store = CompressedERIStore(PaSTRICompressor(dims=(1, 1, 1, 1)), error_bound=1e-10)
    mol = Molecule("h2", (Atom("H", (0, 0, 0)), Atom("H", (0, 0, 1.4))))
    shells = tuple(Shell(0, a.position, *STO3G_H) for a in mol.atoms)
    solver = RHFSolver(BasisSet(mol, shells), store=store)
    stored = mp2_energy(solver)
    assert stored.total_energy == pytest.approx(direct.total_energy, abs=1e-7)
    assert store.stats.n_entries > 0


def test_mp2_rejects_unconverged_reference():
    from repro.errors import ChemistryError

    solver = h2_solver()
    scf = solver.run(max_iterations=1)
    assert not scf.converged
    with pytest.raises(ChemistryError):
        mp2_energy(solver, scf)
