"""Unit tests for molecular geometry containers (repro.chem.molecule)."""

import numpy as np
import pytest

from repro.chem.constants import ANGSTROM_TO_BOHR
from repro.chem.molecule import Atom, Molecule
from repro.errors import GeometryError


def test_atom_normalises_symbol_case():
    assert Atom("c", (0, 0, 0)).symbol == "C"


def test_atom_rejects_unknown_element():
    with pytest.raises(GeometryError):
        Atom("Xx", (0, 0, 0))


def test_atomic_numbers():
    assert Atom("H", (0, 0, 0)).atomic_number == 1
    assert Atom("O", (0, 0, 0)).atomic_number == 8


def test_from_angstrom_converts_to_bohr():
    mol = Molecule.from_angstrom("h2", ["H", "H"], np.array([[0, 0, 0], [0, 0, 1.0]]))
    assert mol.atoms[1].position[2] == pytest.approx(ANGSTROM_TO_BOHR)


def test_from_angstrom_shape_mismatch():
    with pytest.raises(GeometryError):
        Molecule.from_angstrom("bad", ["H"], np.zeros((2, 3)))


def test_empty_molecule_rejected():
    with pytest.raises(GeometryError):
        Molecule("empty", ())


def test_xyz_roundtrip():
    mol = Molecule.from_angstrom(
        "water", ["O", "H", "H"],
        np.array([[0.0, 0.0, 0.0], [0.96, 0.0, 0.0], [-0.24, 0.93, 0.0]]),
    )
    again = Molecule.from_xyz(mol.to_xyz())
    assert again.symbols == mol.symbols
    assert np.allclose(again.coordinates, mol.coordinates, atol=1e-6)


def test_from_xyz_parses_counts_and_comment():
    text = "2\nmy dimer\nH 0 0 0\nHe 0 0 1.5\nextra junk line"
    mol = Molecule.from_xyz(text)
    assert mol.name == "my dimer"
    assert mol.symbols == ["H", "He"]


@pytest.mark.parametrize(
    "bad",
    ["", "x\ncomment\nH 0 0 0", "2\nc\nH 0 0 0", "1\nc\nH 0 0"],
)
def test_from_xyz_rejects_malformed(bad):
    with pytest.raises(GeometryError):
        Molecule.from_xyz(bad)


def test_heavy_atom_indices_skip_hydrogen():
    mol = Molecule("m", (Atom("H", (0, 0, 0)), Atom("C", (1, 0, 0)), Atom("H", (2, 0, 0))))
    assert mol.heavy_atom_indices == [1]


def test_formula_hill_order():
    mol = Molecule(
        "m",
        (Atom("O", (0, 0, 0)), Atom("C", (1, 0, 0)), Atom("H", (2, 0, 0)), Atom("H", (3, 0, 0))),
    )
    assert mol.formula == "CH2O"


def test_nuclear_repulsion_h2():
    # Two protons at 1.4 bohr: E = 1/1.4.
    mol = Molecule("h2", (Atom("H", (0, 0, 0)), Atom("H", (0, 0, 1.4))))
    assert mol.nuclear_repulsion() == pytest.approx(1.0 / 1.4)
