"""ERI engine tests for genuinely contracted shells (multi-primitive paths).

Most polarization shells are single-primitive; these tests force the
``n_bra_prims × n_ket_prims > 1`` accumulation loops in
:meth:`ERIEngine.shell_quartet`.
"""

import numpy as np
import pytest

from repro.chem.basis import BasisSet, Shell
from repro.chem.eri import ERIEngine
from repro.chem.molecule import Atom, Molecule

MOL = Molecule("probe", (Atom("C", (0, 0, 0)),))


def contracted_basis():
    shells = (
        Shell(2, (0.0, 0.0, 0.0), (1.4, 0.45), (0.55, 0.55), 0),
        Shell(2, (0.9, -0.4, 0.7), (1.1, 0.35), (0.4, 0.7), 0),
        Shell(1, (-0.5, 0.8, 0.2), (0.9, 0.3, 0.1), (0.3, 0.5, 0.3), 0),
        Shell(0, (0.3, 0.3, -0.9), (2.0, 0.5), (0.6, 0.5), 0),
    )
    return BasisSet(MOL, shells)


@pytest.fixture(scope="module")
def engine():
    return ERIEngine(contracted_basis())


def test_contracted_quartet_symmetries(engine):
    t = engine.shell_quartet(0, 1, 2, 3)
    assert np.allclose(t, engine.shell_quartet(1, 0, 2, 3).transpose(1, 0, 2, 3))
    assert np.allclose(t, engine.shell_quartet(2, 3, 0, 1).transpose(2, 3, 0, 1))
    assert np.allclose(t, engine.shell_quartet(0, 1, 3, 2).transpose(0, 1, 3, 2))


def test_contracted_diagonal_positive(engine):
    block = engine.shell_quartet(0, 0, 0, 0)
    n = block.shape[0]
    assert np.all(block.reshape(n * n, n * n).diagonal() > 0)


def test_contraction_limits_to_primitive_sum():
    """A 2-primitive contraction must equal the normalised combination of
    its primitive quartets (linearity of the integrals)."""
    a1, a2 = 1.3, 0.4
    c1, c2 = 0.7, 0.4
    A = (0.0, 0.0, 0.0)
    B = (0.0, 0.0, 1.8)
    contracted = Shell(0, A, (a1, a2), (c1, c2))
    s_b = Shell(0, B, (0.8,), (1.0,))
    basis = BasisSet(MOL, (contracted, s_b))
    val = ERIEngine(basis).shell_quartet(0, 1, 0, 1)[0, 0, 0, 0]

    # assemble by hand: contracted = sum_i (c_i / N_i) * normalized_prim_i,
    # where contraction() returns c_i including the primitive norms N_i.
    from repro.chem.basis import primitive_norm

    alphas, coefs = contracted.contraction()
    prim_shells = tuple(Shell(0, A, (float(a),), (1.0,)) for a in alphas)
    eng = ERIEngine(BasisSet(MOL, prim_shells + (s_b,)))
    sb_idx = len(prim_shells)
    weights = [c / primitive_norm(float(a), 0) for a, c in zip(alphas, coefs)]
    want = 0.0
    for i, wi in enumerate(weights):
        for j, wj in enumerate(weights):
            prim = eng.shell_quartet(i, sb_idx, j, sb_idx)[0, 0, 0, 0]
            want += wi * wj * prim
    assert val == pytest.approx(want, rel=1e-12)


def test_schwarz_holds_for_contracted(engine):
    t = engine.shell_quartet(0, 2, 1, 3)
    q_ab = engine.shell_quartet(0, 2, 0, 2)
    q_cd = engine.shell_quartet(1, 3, 1, 3)
    ub = (
        np.sqrt(np.einsum("abab->ab", q_ab))[:, :, None, None]
        * np.sqrt(np.einsum("cdcd->cd", q_cd))[None, None, :, :]
    )
    assert np.all(np.abs(t) <= ub * (1 + 1e-9) + 1e-16)
