"""Integration tests for the McMurchie–Davidson ERI engine (repro.chem.eri)."""

import numpy as np
import pytest

from repro.chem.basis import BasisSet, Shell, primitive_norm
from repro.chem.boys import boys
from repro.chem.eri import ERIEngine
from repro.chem.molecule import Atom, Molecule

MOL = Molecule("probe", (Atom("H", (0, 0, 0)),))


def analytic_ssss(a, b, c, d, A, B, C, D):
    """Closed-form primitive (ss|ss) with normalised Gaussians."""
    A, B, C, D = map(np.asarray, (A, B, C, D))
    p, q = a + b, c + d
    P = (a * A + b * B) / p
    Q = (c * C + d * D) / q
    alpha = p * q / (p + q)
    T = alpha * np.dot(P - Q, P - Q)
    F0 = boys(0, np.array([T]))[0, 0]
    val = (
        2 * np.pi**2.5 / (p * q * np.sqrt(p + q))
        * np.exp(-(a * b / p) * np.dot(A - B, A - B))
        * np.exp(-(c * d / q) * np.dot(C - D, C - D))
        * F0
    )
    for e in (a, b, c, d):
        val *= primitive_norm(e, 0)
    return val


def s_basis(centers, exps):
    shells = tuple(Shell(0, c, (e,), (1.0,)) for c, e in zip(centers, exps))
    return BasisSet(MOL, shells)


def test_ssss_matches_closed_form():
    centers = [(0, 0, 0), (0.5, -0.3, 0.8), (1.1, 0.2, -0.4), (-0.7, 0.9, 0.3)]
    exps = [0.8, 1.3, 0.5, 2.1]
    eng = ERIEngine(s_basis(centers, exps))
    got = eng.shell_quartet(0, 1, 2, 3)[0, 0, 0, 0]
    want = analytic_ssss(*exps, *centers)
    assert got == pytest.approx(want, rel=1e-13)


def test_contracted_ssss_is_sum_of_primitives():
    A, B = (0.0, 0.0, 0.0), (0.0, 0.0, 1.5)
    contracted = BasisSet(
        MOL,
        (
            Shell(0, A, (1.2, 0.4), (0.7, 0.5)),
            Shell(0, B, (0.9,), (1.0,)),
        ),
    )
    eng = ERIEngine(contracted)
    val = eng.shell_quartet(0, 1, 0, 1)[0, 0, 0, 0]
    # Contraction must not break the Schwarz-diagonal positivity.
    assert val > 0


@pytest.mark.parametrize(
    "perm,axes",
    [
        ((1, 0, 2, 3), (1, 0, 2, 3)),
        ((0, 1, 3, 2), (0, 1, 3, 2)),
        ((2, 3, 0, 1), (2, 3, 0, 1)),
        ((3, 2, 1, 0), (3, 2, 1, 0)),
    ],
)
def test_eightfold_permutation_symmetry(eri_engine, perm, axes):
    base = eri_engine.shell_quartet(0, 1, 2, 3)
    other = eri_engine.shell_quartet(*perm)
    assert np.allclose(base, other.transpose(np.argsort(axes)), atol=1e-14)


def test_diagonal_blocks_are_positive(eri_engine):
    for i in range(4):
        block = eri_engine.shell_quartet(i, i, i, i)
        n = block.shape[0]
        diag = block.reshape(n * n, n * n).diagonal()
        assert np.all(diag > 0)


def test_schwarz_inequality_holds(eri_engine):
    t = eri_engine.shell_quartet(2, 3, 0, 1)
    q_ab = eri_engine.shell_quartet(2, 3, 2, 3)
    q_cd = eri_engine.shell_quartet(0, 1, 0, 1)
    ub = (
        np.sqrt(np.einsum("abab->ab", q_ab))[:, :, None, None]
        * np.sqrt(np.einsum("cdcd->cd", q_cd))[None, None, :, :]
    )
    assert np.all(np.abs(t) <= ub * (1 + 1e-9) + 1e-16)


def test_block_shapes_follow_shell_sizes(eri_engine):
    assert eri_engine.shell_quartet(0, 1, 2, 3).shape == (1, 3, 6, 10)
    assert eri_engine.eri_block(0, 1, 2, 3).shape == (180,)


def test_eri_block_is_row_major_flattening(eri_engine):
    t = eri_engine.shell_quartet(3, 2, 1, 0)
    flat = eri_engine.eri_block(3, 2, 1, 0)
    assert flat[0] == t[0, 0, 0, 0]
    assert flat[-1] == t[-1, -1, -1, -1]
    assert np.array_equal(flat, t.ravel())


def test_pair_cache_reused(eri_engine):
    eri_engine.clear_cache()
    eri_engine.shell_quartet(0, 1, 0, 1)
    assert (0, 1) in eri_engine._pair_cache
    n = len(eri_engine._pair_cache)
    eri_engine.shell_quartet(0, 1, 2, 3)
    assert len(eri_engine._pair_cache) == n + 1


def test_coulomb_decay_with_distance():
    """|(ab|cd)| decays ~1/R for well-separated charge distributions."""
    vals = []
    for R in (10.0, 20.0, 40.0):
        shells = (
            Shell(0, (0, 0, 0), (1.0,), (1.0,)),
            Shell(0, (0, 0, 0.5), (1.0,), (1.0,)),
            Shell(0, (0, 0, R), (1.0,), (1.0,)),
            Shell(0, (0, 0, R + 0.5), (1.0,), (1.0,)),
        )
        eng = ERIEngine(BasisSet(MOL, shells))
        vals.append(eng.shell_quartet(0, 1, 2, 3)[0, 0, 0, 0])
    assert vals[0] / vals[1] == pytest.approx(2.0, rel=1e-3)
    assert vals[1] / vals[2] == pytest.approx(2.0, rel=1e-3)


def test_asymptotic_outer_product_structure():
    """Paper Eq. 3: distant blocks factor into bra ⊗ ket shape tensors."""
    shells = (
        Shell(2, (0, 0, 0), (0.9,), (1.0,)),
        Shell(2, (0.8, 0.3, 0.2), (1.1,), (1.0,)),
        Shell(2, (0.1, 0.4, 25.0), (0.8,), (1.0,)),
        Shell(2, (0.5, -0.2, 25.7), (1.0,), (1.0,)),
    )
    eng = ERIEngine(BasisSet(MOL, shells))
    block = eng.shell_quartet(0, 1, 2, 3).reshape(36, 36)
    # rank-1 dominance: second singular value far below the first
    s = np.linalg.svd(block, compute_uv=False)
    assert s[1] < 1e-3 * s[0]
