"""Tests for the built-in benchmark molecules (repro.chem.molecules)."""

import numpy as np
import pytest

from repro.chem.constants import ANGSTROM_TO_BOHR
from repro.chem.molecules import benzene, glutamine, molecule_by_name, trialanine
from repro.errors import GeometryError


def min_distance(mol):
    c = mol.coordinates
    d = np.linalg.norm(c[:, None] - c[None, :], axis=2)
    d[np.diag_indices(len(mol))] = np.inf
    return d.min()


def test_benzene_formula_and_geometry():
    mol = benzene()
    assert mol.formula == "C6H6"
    # C-C distance should be 1.397 Å
    c = mol.coordinates[:6]
    d01 = np.linalg.norm(c[0] - c[1]) / ANGSTROM_TO_BOHR
    assert d01 == pytest.approx(1.397, abs=1e-6)
    # planar
    assert np.abs(mol.coordinates[:, 2]).max() == 0.0


def test_glutamine_formula():
    assert glutamine().formula == "C5H10N2O3"


def test_trialanine_formula():
    assert trialanine().formula == "C9H17N3O4"


@pytest.mark.parametrize("factory", [benzene, glutamine, trialanine])
def test_no_atom_collisions(factory):
    # Approximate model geometries must still be physically plausible.
    assert min_distance(factory()) > 0.7 * ANGSTROM_TO_BOHR


@pytest.mark.parametrize("factory", [glutamine, trialanine])
def test_molecules_are_three_dimensional(factory):
    coords = factory().coordinates
    spans = coords.max(axis=0) - coords.min(axis=0)
    assert np.count_nonzero(spans > 0.5) == 3


def test_molecule_by_name_lookup():
    assert molecule_by_name("Benzene").name == "benzene"
    assert molecule_by_name("tri-alanine").name == "trialanine"
    assert molecule_by_name("alanine").name == "trialanine"  # paper's label
    with pytest.raises(GeometryError):
        molecule_by_name("caffeine")


def test_heavy_atom_counts():
    assert len(benzene().heavy_atom_indices) == 6
    assert len(glutamine().heavy_atom_indices) == 10
    assert len(trialanine().heavy_atom_indices) == 16
