"""Tests for the restricted Hartree–Fock solver (repro.chem.scf)."""

import numpy as np
import pytest

from repro.chem.basis import BasisSet, Shell
from repro.chem.molecule import Atom, Molecule
from repro.chem.scf import RHFSolver
from repro.core import PaSTRICompressor
from repro.errors import ChemistryError
from repro.pipeline import CompressedERIStore

STO3G_H = ((3.42525091, 0.62391373, 0.16885540), (0.15432897, 0.53532814, 0.44463454))


def h2(r=1.4):
    mol = Molecule("h2", (Atom("H", (0, 0, 0)), Atom("H", (0, 0, r))))
    shells = tuple(Shell(0, a.position, *STO3G_H) for a in mol.atoms)
    return BasisSet(mol, shells)


def test_h2_sto3g_energy_matches_literature():
    """Szabo & Ostlund: E(RHF/STO-3G, R=1.4) = -1.1167 hartree."""
    res = RHFSolver(h2()).run()
    assert res.converged
    assert res.energy == pytest.approx(-1.1167, abs=2e-4)


def test_orbital_energies_signs():
    res = RHFSolver(h2()).run()
    # bonding orbital below zero, antibonding above
    assert res.orbital_energies[0] < 0 < res.orbital_energies[1]


def test_variational_improvement_with_p_shells():
    basis = h2()
    augmented = BasisSet(
        basis.molecule,
        basis.shells + tuple(
            Shell(1, a.position, (1.1,), (1.0,)) for a in basis.molecule.atoms
        ),
    )
    e_small = RHFSolver(basis).run().energy
    e_big = RHFSolver(augmented).run(max_iterations=200).energy
    assert e_big < e_small  # variational principle


def test_energy_monotone_once_converging():
    res = RHFSolver(h2()).run()
    hist = res.energy_history
    assert abs(hist[-1] - hist[-2]) < 1e-9


def test_dissociation_curve_has_minimum():
    energies = {r: RHFSolver(h2(r)).run().energy for r in (1.0, 1.4, 2.2)}
    assert energies[1.4] < energies[1.0]
    assert energies[1.4] < energies[2.2]


def test_compressed_store_reproduces_direct_energy():
    """The paper's claim: 1e-10-bounded ERIs leave the SCF solution intact."""
    direct = RHFSolver(h2()).run()
    store = CompressedERIStore(PaSTRICompressor(dims=(1, 1, 1, 1)), error_bound=1e-10)
    stored = RHFSolver(h2(), store=store).run()
    assert abs(stored.energy - direct.energy) < 1e-8
    assert store.stats.gets > 0 or store.stats.puts > 0


def test_loose_bound_perturbs_energy_more():
    direct = RHFSolver(h2()).run()
    loose = CompressedERIStore(PaSTRICompressor(dims=(1, 1, 1, 1)), error_bound=1e-3)
    res = RHFSolver(h2(), store=loose).run()
    assert abs(res.energy - direct.energy) < 0.05  # still roughly right
    # and a tight bound is strictly better
    tight = CompressedERIStore(PaSTRICompressor(dims=(1, 1, 1, 1)), error_bound=1e-12)
    res_t = RHFSolver(h2(), store=tight).run()
    assert abs(res_t.energy - direct.energy) <= abs(res.energy - direct.energy)


def test_diis_accelerates_water():
    from repro.chem.basis_sets import sto3g_basis, water

    basis = sto3g_basis(water())
    plain = RHFSolver(basis).run(diis=False)
    accel = RHFSolver(basis).run(diis=True)
    assert plain.converged and accel.converged
    assert accel.energy == pytest.approx(plain.energy, abs=1e-8)
    assert accel.iterations < plain.iterations


def test_diis_harmless_on_trivial_case():
    res = RHFSolver(h2()).run(diis=True)
    assert res.converged
    assert res.energy == pytest.approx(-1.1167, abs=2e-4)


def test_odd_electron_count_rejected():
    mol = Molecule("heh", (Atom("He", (0, 0, 0)), Atom("H", (0, 0, 1.5))))
    shells = tuple(Shell(0, a.position, *STO3G_H) for a in mol.atoms)
    with pytest.raises(ChemistryError):
        RHFSolver(BasisSet(mol, shells))


def test_too_few_basis_functions_rejected():
    mol = Molecule("o2ish", (Atom("O", (0, 0, 0)), Atom("O", (0, 0, 2.3))))
    shells = (Shell(0, (0, 0, 0), (1.0,), (1.0,)),)
    with pytest.raises(ChemistryError):
        RHFSolver(BasisSet(mol, shells))
