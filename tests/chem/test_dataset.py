"""Unit/integration tests for ERI dataset generation (repro.chem.dataset)."""

import numpy as np
import pytest

from repro.chem.dataset import (
    ERIDataset,
    basis_for_config,
    canonical_quartets,
    generate_dataset,
)
from repro.chem.molecules import benzene
from repro.core.blocking import BlockSpec
from repro.errors import ParameterError


def test_canonical_quartets_same_group_counts():
    g = list(range(4))
    quartets = canonical_quartets((g, g, g, g))
    # pairs = 4*5/2 = 10; unique pair-of-pairs = 10*11/2 = 55
    assert len(quartets) == 55
    assert len(set(quartets)) == 55


def test_canonical_quartets_distinct_groups_full_product():
    quartets = canonical_quartets(([0], [1, 2], [3], [4]))
    assert len(quartets) == 2


def test_basis_for_config_mixed_letters():
    basis = basis_for_config(benzene(), "(fd|ff)")
    assert len(basis.shells_of_type("d")) == 6
    assert len(basis.shells_of_type("f")) == 6


def test_generate_dataset_block_geometry(tiny_eri_dataset):
    ds = tiny_eri_dataset
    assert ds.spec.dims == (6, 6, 6, 6)
    assert ds.n_blocks == 30
    assert ds.data.size == 30 * 1296
    assert ds.config == "(dd|dd)"


def test_generate_dataset_deterministic_sampling():
    a = generate_dataset(benzene(), "(dd|dd)", n_blocks=5, seed=11)
    b = generate_dataset(benzene(), "(dd|dd)", n_blocks=5, seed=11)
    assert np.array_equal(a.data, b.data)
    c = generate_dataset(benzene(), "(dd|dd)", n_blocks=5, seed=12)
    assert not np.array_equal(a.data, c.data)


def test_generate_dataset_oversampling_tiles():
    ds = generate_dataset(benzene(), "(dd|dd)", n_blocks=240)
    assert ds.n_blocks == 240  # only 231 unique quartets: tiling kicks in
    assert len(ds.quartets) == 240


def test_generate_dataset_screening_zeroes_blocks():
    ds = generate_dataset(benzene(), "(dd|dd)", n_blocks=20, screen_threshold=1e10)
    # absurd threshold screens everything -> all-zero stream
    assert np.all(ds.data == 0.0)


def test_blocks_view_shape(tiny_eri_dataset):
    b = tiny_eri_dataset.blocks()
    assert b.shape == (30, 36, 36)
    assert np.shares_memory(b, tiny_eri_dataset.data)


def test_save_load_roundtrip(tmp_path, tiny_eri_dataset):
    path = str(tmp_path / "ds.npz")
    tiny_eri_dataset.save(path)
    again = ERIDataset.load(path)
    assert np.array_equal(again.data, tiny_eri_dataset.data)
    assert again.spec == tiny_eri_dataset.spec
    assert again.molecule_name == tiny_eri_dataset.molecule_name


def test_dataset_rejects_misaligned_length():
    with pytest.raises(ParameterError):
        ERIDataset(data=np.zeros(100), spec=BlockSpec((6, 6, 6, 6)))


def test_dataset_rejects_bad_config():
    with pytest.raises(ParameterError):
        generate_dataset(benzene(), "(dd|d)")
