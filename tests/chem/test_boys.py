"""Unit tests for the Boys function (repro.chem.boys)."""

import numpy as np
import pytest

from repro.chem.boys import boys, boys_reference


def test_f0_at_zero_is_one():
    assert boys(0, np.array([0.0]))[0, 0] == pytest.approx(1.0)


def test_fm_at_zero_is_reciprocal_odd():
    vals = boys(4, np.array([0.0]))[:, 0]
    assert np.allclose(vals, [1.0, 1 / 3, 1 / 5, 1 / 7, 1 / 9])


def test_f0_closed_form():
    # F0(T) = sqrt(pi/(4T)) * erf(sqrt(T))
    from scipy.special import erf

    T = np.array([0.5, 2.0, 10.0, 50.0])
    want = np.sqrt(np.pi / (4 * T)) * erf(np.sqrt(T))
    assert np.allclose(boys(0, T)[0], want, rtol=1e-13)


@pytest.mark.parametrize("m", [0, 1, 3, 6])
@pytest.mark.parametrize("T", [1e-14, 1e-8, 0.1, 1.0, 7.5, 40.0])
def test_against_quadrature(m, T):
    got = boys(m, np.array([T]))[m, 0]
    want = boys_reference(m, T)
    assert got == pytest.approx(want, rel=1e-9)


def test_downward_recurrence_identity():
    # F_{m-1}(T) = (2T F_m(T) + e^-T) / (2m - 1)
    T = np.array([0.3, 3.0, 12.0])
    F = boys(5, T)
    for m in range(5, 0, -1):
        lhs = F[m - 1]
        rhs = (2 * T * F[m] + np.exp(-T)) / (2 * m - 1)
        assert np.allclose(lhs, rhs, rtol=1e-12)


def test_monotone_decreasing_in_m_and_T():
    T = np.linspace(0.0, 30.0, 50)
    F = boys(3, T)
    assert np.all(np.diff(F, axis=0) <= 0)  # decreasing in m
    assert np.all(np.diff(F[0]) < 0)  # decreasing in T


def test_multidimensional_T_shapes():
    T = np.abs(np.random.default_rng(0).standard_normal((4, 5)))
    F = boys(2, T)
    assert F.shape == (3, 4, 5)
    assert np.allclose(F[1], boys(2, T.ravel())[1].reshape(4, 5))
