"""Tests for the STO-3G tables and builders (repro.chem.basis_sets)."""

import numpy as np
import pytest

from repro.chem.basis import BasisSet
from repro.chem.basis_sets import sto3g_basis, sto3g_shells_for_atom, water
from repro.chem.molecule import Atom, Molecule
from repro.chem.scf import RHFSolver
from repro.errors import BasisError, ChemistryError


def test_hydrogen_sto3g_exponents_match_literature():
    (sh,) = sto3g_shells_for_atom("H", (0, 0, 0))
    # zeta = 1.24: alpha_1 = 2.227660584 * 1.24^2 = 3.42525...
    assert sh.exponents[0] == pytest.approx(3.425250914, rel=1e-6)
    assert sh.coefficients == pytest.approx(
        (0.1543289673, 0.5353281423, 0.4446345422)
    )


def test_row2_atoms_get_sp_manifold():
    shells = sto3g_shells_for_atom("O", (0, 0, 0))
    assert [s.l for s in shells] == [0, 0, 1]
    # 2s and 2p share exponents (an SP shell)
    assert shells[1].exponents == shells[2].exponents


def test_unknown_element_rejected():
    with pytest.raises(BasisError):
        sto3g_shells_for_atom("Ne" + "x", (0, 0, 0))
    with pytest.raises(BasisError):
        sto3g_shells_for_atom("P", (0, 0, 0))  # not tabulated here


def test_water_basis_size():
    basis = sto3g_basis(water())
    assert basis.n_basis_functions == 7  # O: 1s,2s,2p(3); H,H: 1s each


def test_water_rhf_energy_matches_literature():
    """RHF/STO-3G for H2O ≈ -74.963 hartree at the experimental geometry."""
    res = RHFSolver(sto3g_basis(water())).run(max_iterations=60)
    assert res.converged
    assert res.energy == pytest.approx(-74.963, abs=5e-3)


def test_water_orbital_structure():
    res = RHFSolver(sto3g_basis(water())).run(max_iterations=60)
    # 5 doubly-occupied orbitals below 2 virtuals
    assert np.sum(res.orbital_energies < 0) >= 5
    assert res.orbital_energies[0] < -15  # O 1s core level ~ -20.2 hartree


def test_hehp_cation_matches_szabo():
    """HeH+ at R=1.4632 a0 — Szabo & Ostlund's worked example: E ≈ -2.8606."""
    mol = Molecule("hehp", (Atom("He", (0, 0, 0)), Atom("H", (0, 0, 1.4632))))
    shells = tuple(
        s
        for i, a in enumerate(mol.atoms)
        for s in sto3g_shells_for_atom(a.symbol, a.position, i)
    )
    res = RHFSolver(BasisSet(mol, shells), charge=1).run()
    assert res.converged
    assert res.energy == pytest.approx(-2.8606, abs=2e-3)


def test_charge_validation():
    basis = sto3g_basis(water())
    with pytest.raises(ChemistryError):
        RHFSolver(basis, charge=1)  # odd electron count
    with pytest.raises(ChemistryError):
        RHFSolver(basis, charge=10)  # no electrons left
