"""Unit tests for the asymptotic-model generator (repro.chem.synthetic)."""

import numpy as np
import pytest

from repro.chem.synthetic import SyntheticERIModel
from repro.core import PaSTRICompressor
from repro.errors import ParameterError


def model(**kw):
    kw.setdefault("zero_fraction", 0.0)
    return SyntheticERIModel.from_config("(dd|dd)", **kw)


def test_generation_is_deterministic_per_seed():
    a = model(seed=3).generate(10)
    b = model(seed=3).generate(10)
    assert np.array_equal(a.data, b.data)
    assert not np.array_equal(a.data, model(seed=4).generate(10).data)


def test_block_geometry_from_config():
    ds = model().generate(5)
    assert ds.spec.dims == (6, 6, 6, 6)
    assert ds.n_blocks == 5


def test_zero_fraction_produces_zero_blocks():
    m = SyntheticERIModel.from_config("(dd|dd)", zero_fraction=0.5, seed=0)
    blocks = m.generate_blocks(400)
    zero = np.count_nonzero(np.abs(blocks).max(axis=(1, 2)) == 0)
    assert 120 < zero < 280


def test_amplitudes_span_configured_range():
    m = model(amp_range=(1e-9, 1e-3), seed=1)
    amps = np.abs(m.generate_blocks(300)).max(axis=(1, 2))
    assert amps.min() > 1e-10 and amps.max() < 1e-1


def test_zero_deviation_blocks_are_exact_outer_products():
    m = model(rel_deviation=0.0, seed=2)
    blocks = m.generate_blocks(5)
    for blk in blocks:
        s = np.linalg.svd(blk, compute_uv=False)
        assert s[1] <= 1e-12 * s[0]


def test_stream_chunks_concatenate_to_generate():
    m = model(seed=9)
    whole = m.generate(20).data
    parts = np.concatenate(list(m.stream(20, chunk_blocks=7)))
    assert np.array_equal(whole, parts)


def test_synthetic_data_compresses_like_eri(rng):
    ds = SyntheticERIModel.from_config("(dd|dd)", seed=5).generate(60)
    codec = PaSTRICompressor(dims=ds.spec.dims)
    blob = codec.compress(ds.data, 1e-10)
    assert ds.nbytes / len(blob) > 8  # calibrated to the paper's regime


def test_parameter_validation():
    with pytest.raises(ParameterError):
        SyntheticERIModel.from_config("(dd|dd)", amp_range=(1e-3, 1e-9))
    with pytest.raises(ParameterError):
        SyntheticERIModel.from_config("(dd|dd)", zero_fraction=1.5)
    with pytest.raises(ParameterError):
        SyntheticERIModel.from_config("(dd|dd)", rel_deviation=-0.1)
