# Convenience entry points.  Everything assumes an in-tree run
# (PYTHONPATH=src) so no install step is required.

PY ?= python
export PYTHONPATH := src

.PHONY: test ci bench bench-record overhead-check serve-smoke fsck-smoke \
	store-bench-smoke scaling-smoke cluster-smoke reshard-smoke lowrank-smoke harness

test:
	$(PY) -m pytest tests/ -q

## What .github/workflows/ci.yml runs: the tier-1 suite plus the linter
## (skipped with a note when ruff isn't installed locally).
ci:
	$(PY) -m pytest -x -q
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src/; \
	else \
		echo "ruff not installed; lint runs in CI"; \
	fi

## Timed paper benchmarks (pytest-benchmark, shape assertions included).
bench:
	$(PY) -m pytest benchmarks/ --benchmark-only -q

## Record codec + container throughput and machine info into
## BENCH_pr3.json so future PRs have a trajectory to compare against
## (see benchmarks/record.py).
bench-record:
	$(PY) -m benchmarks.record

## The CI telemetry gate: fails when telemetry-enabled compress/decompress
## is >10% slower than disabled (see benchmarks/overhead_check.py).
overhead-check:
	$(PY) -m benchmarks.overhead_check --reps 7 --threshold 0.10

## End-to-end service check: boot `pastri serve` as a subprocess, round-trip
## through the client with the error bound asserted client-side, verify live
## service.* metrics, then SIGTERM and require a clean drain.  The outer
## timeout turns a wedged server into a failure, never a hung build.
serve-smoke:
	timeout 120 $(PY) scripts/serve_smoke.py

## Crash-recovery check: build a real container, truncate a copy at a
## random byte (seed printed for reproduction), run `pastri fsck` as a
## subprocess, and verify the salvaged frames round-trip within the
## error bound.  Hard timeout so a wedged salvage fails, never hangs.
fsck-smoke:
	timeout 120 $(PY) scripts/fsck_smoke.py

## Spill-store perf gate: a fixed-seed reuse workload run under the
## pre-overhaul LRU config and the 2Q/mmap/readahead path.  Fails unless
## the overhauled path is >=3x faster with >=4x fewer disk reads, the
## ratio is untouched, and a compacted container recovers every frame.
store-bench-smoke:
	timeout 120 $(PY) scripts/store_bench_smoke.py

## Zero-copy data-plane gate: a 2-worker compress/decompress round-trip
## over the shared-memory segment pool, byte-identical to the in-process
## codec, with telemetry proving bytes_borrowed >= bytes_copied and a
## leak check (no in-process segments, no orphaned /dev/shm entries)
## after shutdown.  Degrades to a pickle-fallback correctness check on
## hosts without POSIX shared memory.
scaling-smoke:
	timeout 120 $(PY) scripts/scaling_smoke.py

## Cluster failover gate: a 3-shard `pastri serve` fleet (replication 2)
## behind the gateway; client round-trip, SIGKILL one shard with zero
## failed reads, hints drained on rejoin, zero payload bytes copied on
## the forward path, and no leaked shm segments after teardown.
cluster-smoke:
	timeout 180 $(PY) scripts/cluster_smoke.py

## Live-reshard gate: 2-shard fleet (replication 1) under a background
## read hammer; `cluster.reshard.add` a third shard with zero failed
## reads, ~1/3 of keys moved byte-identically, then `remove` it again
## under the same traffic, and no leaked shm segments after teardown.
reshard-smoke:
	timeout 240 $(PY) scripts/reshard_smoke.py

## Low-rank codec gate: pack a structured shell-block batch into a real
## container via `pastri pack --codec lowrank` (codec revived purely from
## the embedded spec) and round-trip the same batch through a live
## `pastri serve --codec lowrank` subprocess, asserting the point-wise
## bound and a minimum ratio on both paths plus live lowrank.* telemetry.
lowrank-smoke:
	timeout 150 $(PY) scripts/lowrank_smoke.py

harness:
	$(PY) -m repro.harness all
