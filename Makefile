# Convenience entry points.  Everything assumes an in-tree run
# (PYTHONPATH=src) so no install step is required.

PY ?= python
export PYTHONPATH := src

.PHONY: test bench bench-record harness

test:
	$(PY) -m pytest tests/ -q

## Timed paper benchmarks (pytest-benchmark, shape assertions included).
bench:
	$(PY) -m pytest benchmarks/ --benchmark-only -q

## Record codec throughput + machine info into BENCH_pr1.json so future
## PRs have a trajectory to compare against (see benchmarks/record.py).
bench-record:
	$(PY) -m benchmarks.record

harness:
	$(PY) -m repro.harness all
