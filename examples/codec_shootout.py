#!/usr/bin/env python3
"""Codec shootout: every compressor in the package on one real dataset.

Compares PaSTRI (all five scaling metrics), SZ, ZFP, and the lossless
references on a glutamine (dd|dd) dataset across three error bounds —
a miniature of the paper's full §V evaluation.

Run:  python examples/codec_shootout.py
"""

import time

import numpy as np

from repro import (
    DeflateCodec,
    FPCCodec,
    PaSTRICompressor,
    SZCompressor,
    ZFPCompressor,
    generate_dataset,
    glutamine,
    psnr,
)
from repro.core.scaling import ScalingMetric
from repro.harness.report import render_table


def main() -> None:
    ds = generate_dataset(glutamine(), "(dd|dd)", n_blocks=300, seed=1)
    data = ds.data
    print(f"glutamine (dd|dd): {ds.n_blocks} blocks, {ds.nbytes / 1e6:.1f} MB\n")

    rows = []
    for eb in (1e-9, 1e-10, 1e-11):
        for name, codec in [
            ("pastri", PaSTRICompressor(dims=ds.spec.dims)),
            ("sz", SZCompressor()),
            ("zfp", ZFPCompressor()),
        ]:
            t0 = time.perf_counter()
            blob = codec.compress(data, eb)
            t_c = time.perf_counter() - t0
            out = codec.decompress(blob)
            err = np.max(np.abs(out - data))
            assert err <= eb
            rows.append(
                [f"{eb:.0e}", name, f"{data.nbytes / len(blob):.2f}",
                 f"{psnr(data, out):.1f}", f"{data.nbytes / t_c / 1e6:.1f}"]
            )
    print(render_table(["EB", "codec", "ratio", "PSNR dB", "comp MB/s"], rows))

    print("\nlossless references (exact reconstruction):")
    rows = []
    for name, codec in (("deflate", DeflateCodec()), ("fpc", FPCCodec())):
        sample = data[: 150_000]
        blob = codec.compress(sample)
        assert np.array_equal(codec.decompress(blob), sample)
        rows.append([name, f"{sample.nbytes / len(blob):.2f}"])
    print(render_table(["codec", "ratio"], rows))

    print("\nPaSTRI scaling metrics (paper Fig. 4):")
    rows = []
    for metric in ScalingMetric:
        codec = PaSTRICompressor(dims=ds.spec.dims, metric=metric)
        blob = codec.compress(data, 1e-10)
        rows.append([metric.name, f"{data.nbytes / len(blob):.2f}"])
    print(render_table(["metric", "ratio @ 1e-10"], rows))


if __name__ == "__main__":
    main()
