#!/usr/bin/env python3
"""Quickstart: compress real two-electron integrals with PaSTRI.

Generates a (dd|dd) ERI dataset for benzene with the built-in integral
engine, compresses it at the paper's default error bound (1e-10), verifies
the point-wise bound, and compares against the SZ/ZFP baselines.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    PaSTRICompressor,
    SZCompressor,
    ZFPCompressor,
    benzene,
    generate_dataset,
)

EB = 1e-10


def main() -> None:
    print("generating benzene (dd|dd) ERIs with the McMurchie-Davidson engine...")
    ds = generate_dataset(benzene(), "(dd|dd)", n_blocks=120, exponent_scale=(1.0, 2.0))
    print(f"  {ds.n_blocks} shell blocks, {ds.nbytes / 1e6:.1f} MB of doubles\n")

    codec = PaSTRICompressor(dims=ds.spec.dims)
    blob = codec.compress(ds.data, error_bound=EB)
    out = codec.decompress(blob)

    err = np.max(np.abs(out - ds.data))
    print(f"PaSTRI:  ratio {ds.nbytes / len(blob):6.2f}x   max|err| = {err:.2e}  (bound {EB:g})")
    assert err <= EB

    for name, baseline in (("SZ", SZCompressor()), ("ZFP", ZFPCompressor())):
        b = baseline.compress(ds.data, EB)
        e = np.max(np.abs(baseline.decompress(b) - ds.data))
        print(f"{name:6s}:  ratio {ds.nbytes / len(b):6.2f}x   max|err| = {e:.2e}")

    print("\nPaSTRI exploits the scaled-pattern structure of ERI blocks that")
    print("general-purpose compressors cannot see (paper Fig. 9a).")


if __name__ == "__main__":
    main()
