#!/usr/bin/env python3
"""Pattern explorer: see the latent structure PaSTRI exploits (paper Fig. 3).

Computes one real (dd|dd) shell block for tri-alanine, overlays its first
two sub-blocks before and after rescaling as ASCII sparklines, and prints
the deviation statistics that make pattern scaling work.

Run:  python examples/pattern_explorer.py [block_index]
"""

import sys

import numpy as np

from repro import generate_dataset, trialanine
from repro.core.scaling import ScalingMetric, fit_pattern

BARS = " .:-=+*#%@"


def sparkline(values: np.ndarray, width: int = 72) -> str:
    v = values[:width]
    amp = np.abs(v).max() or 1.0
    idx = np.clip(((v / amp) * 4.5 + 4.5).astype(int), 0, 9)
    return "".join(BARS[i] for i in idx)


def main() -> None:
    ds = generate_dataset(trialanine(), "(dd|dd)", n_blocks=200, seed=0)
    blocks = ds.blocks()
    amps = np.abs(blocks).max(axis=(1, 2))
    if len(sys.argv) > 1:
        pick = int(sys.argv[1])
    else:
        mids = np.flatnonzero((amps > 1e-8) & (amps < 1e-6))
        pick = int(mids[0]) if mids.size else int(np.argmax(amps))
    blk = blocks[pick]

    sb0, sb1 = blk[0], blk[1]
    print(f"block {pick}: {ds.spec.config}, sub-block size {ds.spec.sb_size}")
    print(f"\nsub-block 0 (range {np.abs(sb0).max():.2e}):")
    print("  " + sparkline(sb0))
    print(f"sub-block 1 (range {np.abs(sb1).max():.2e}):")
    print("  " + sparkline(sb1))

    fit = fit_pattern(blk, ScalingMetric.ER)
    ref = int(np.argmax(np.abs(sb0)))
    rescaled = sb0 * (sb1[ref] / sb0[ref])
    print("\nsub-block 1 rescaled onto sub-block 0's shape:")
    print("  " + sparkline(rescaled))
    dev = np.abs(sb1 - rescaled)
    print(f"\nmax |deviation| after rescale: {dev.max():.2e} "
          f"({dev.max() / max(np.abs(sb1).max(), 1e-300):.1e} of the amplitude)")

    print(f"\nER pattern fit for the whole block (pattern = sub-block {fit.pattern_index}):")
    print(f"  scaling coefficients: {np.array2string(fit.scales[:8], precision=3)} ...")
    print("  all coefficients lie in [-1, 1] — one per sub-block is all PaSTRI stores")


if __name__ == "__main__":
    main()
