#!/usr/bin/env python3
"""Integral-reuse pipeline: the paper's Fig. 11 workflow on real data.

Quantum-chemistry solvers sweep over the same ERIs every SCF iteration
(10–30 times).  This example runs an iteration loop two ways:

* *original* — recompute every shell quartet from scratch each iteration
  (what GAMESS does when integrals don't fit in memory), and
* *PaSTRI infrastructure* — compute once into a compressed in-memory store
  (:class:`repro.pipeline.CompressedERIStore`), decompress on use.

It reports wall-clock for both, the store's compression ratio, and the
maximum error the lossy store introduced into the accumulated Coulomb-like
contraction.

Run:  python examples/scf_reuse_pipeline.py
"""

import time

import numpy as np

from repro import CompressedERIStore, PaSTRICompressor, glutamine
from repro.chem.basis import polarization_basis
from repro.chem.dataset import canonical_quartets
from repro.chem.eri import ERIEngine

N_ITERATIONS = 8
EB = 1e-10


def main() -> None:
    mol = glutamine()
    basis = polarization_basis(mol, "d")
    engine = ERIEngine(basis)
    shells = list(range(len(basis)))
    quartets = canonical_quartets((shells, shells, shells, shells))[:400]
    print(f"{mol.name}: {len(basis)} d shells, {len(quartets)} quartets per sweep\n")

    # A density-like weight vector to contract against (stands in for the
    # Fock-build the real solver performs with each block).
    rng = np.random.default_rng(0)
    weights = rng.standard_normal(1296)

    # --- original: recompute every iteration -------------------------------
    t0 = time.perf_counter()
    acc_exact = np.zeros(len(quartets))
    for _ in range(N_ITERATIONS):
        for k, q in enumerate(quartets):
            acc_exact[k] += engine.eri_block(*q) @ weights
        engine.clear_cache()  # model the no-reuse regime honestly
    t_orig = time.perf_counter() - t0
    print(f"original (recompute x{N_ITERATIONS}):      {t_orig:7.2f} s")

    # --- PaSTRI infrastructure: compute once, decompress per use ----------
    store = CompressedERIStore(PaSTRICompressor(config="(dd|dd)"), error_bound=EB)
    t0 = time.perf_counter()
    acc_store = np.zeros(len(quartets))
    for it in range(N_ITERATIONS):
        for k, q in enumerate(quartets):
            block = store.get_or_compute(q, lambda q=q: engine.eri_block(*q))
            acc_store[k] += block @ weights
    t_store = time.perf_counter() - t0
    print(f"PaSTRI store (compute once):      {t_store:7.2f} s")

    st = store.stats
    print(f"\nstore: {len(store)} blocks, ratio {st.ratio:.1f}x "
          f"({st.original_bytes / 1e6:.1f} MB -> {st.compressed_bytes / 1e6:.2f} MB)")
    print(f"speedup: {t_orig / t_store:.2f}x")
    err = np.abs(acc_store - acc_exact).max() / N_ITERATIONS
    bound = EB * np.abs(weights).sum()  # point-wise EB through the contraction
    print(f"max contraction error per sweep: {err:.2e} (analytic bound {bound:.2e})")
    assert err <= bound


if __name__ == "__main__":
    main()
