#!/usr/bin/env python3
"""Parallel dump/load experiment (paper Fig. 10).

Two parts:

1. *Real parallelism on this machine* — PaSTRI's block-local design lets a
   multiprocessing pool compress independent chunks; we measure the scaling
   from 1 to all local cores.
2. *Cluster-scale model* — the GPFS bandwidth model replays the paper's
   256–2048-core file-per-process experiment using this run's measured
   compression ratio.

Run:  python examples/parallel_io_sim.py
"""

import multiprocessing
import time

import numpy as np

from repro import SyntheticERIModel
from repro.harness.report import render_table
from repro.metrics import compression_ratio
from repro.parallel.iosim import PAPER_RATES, IOSimulator
from repro.parallel.pool import parallel_compress, parallel_decompress

EB = 1e-10


def main() -> None:
    model = SyntheticERIModel.from_config("(dd|dd)", seed=3)
    ds = model.generate(1200)
    data = ds.data
    print(f"synthetic alanine-like (dd|dd) stream: {data.nbytes / 1e6:.1f} MB\n")

    print("part 1: real block-parallel compression on this machine")
    rows = []
    kwargs = {"dims": ds.spec.dims}
    blob_size = None
    for workers in (1, 2, min(4, multiprocessing.cpu_count()), multiprocessing.cpu_count()):
        t0 = time.perf_counter()
        blobs = parallel_compress("pastri", data, EB, workers, ds.spec.block_size, kwargs)
        t_c = time.perf_counter() - t0
        t0 = time.perf_counter()
        out = parallel_decompress("pastri", blobs, workers, kwargs)
        t_d = time.perf_counter() - t0
        assert np.max(np.abs(out - data)) <= EB
        blob_size = sum(len(b) for b in blobs)
        rows.append([workers, f"{data.nbytes / t_c / 1e6:.1f}", f"{data.nbytes / t_d / 1e6:.1f}"])
    print(render_table(["workers", "compress MB/s", "decompress MB/s"], rows))

    ratio = compression_ratio(data.nbytes, blob_size)
    print(f"\npart 2: modelled 2 TB dump/load on a GPFS cluster (ratio {ratio:.1f}x)")
    sim = IOSimulator(dataset_bytes=2e12)
    rows = []
    for name, r in (("sz", 7.24), ("zfp", 5.92), ("pastri", ratio)):
        for res in sim.sweep(name, r, rates=PAPER_RATES[name]):
            rows.append([name, res.n_cores, f"{res.dump_time / 60:.2f}", f"{res.load_time / 60:.2f}"])
    print(render_table(["codec", "cores", "dump (min)", "load (min)"], rows))
    print("\nPaSTRI's higher ratio halves the bytes crossing the file system —")
    print("the 2x end-to-end win of the paper's Fig. 10.")


if __name__ == "__main__":
    main()
