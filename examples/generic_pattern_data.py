#!/usr/bin/env python3
"""PaSTRI beyond chemistry: generic data with latent pattern features.

The paper closes with: the algorithm "can be used for compressing any data
with pattern features".  This example builds a non-chemistry dataset — a
sensor-array dump where every frame is the same waveform at a different
gain (think rotating machinery sampled by many channels) — lets
:func:`repro.core.detect_block_spec` discover the block structure with no
domain knowledge, and compares codecs on it.

Run:  python examples/generic_pattern_data.py
"""

import numpy as np

from repro import PaSTRICompressor, SZCompressor, ZFPCompressor
from repro.core import detect_block_spec
from repro.harness.report import render_table

EB = 1e-8


def sensor_dump(n_machines: int = 200, channels: int = 24, samples: int = 48,
                seed: int = 0) -> np.ndarray:
    """Each machine: `channels` gain-scaled copies of its vibration signature."""
    rng = np.random.default_rng(seed)
    t = np.linspace(0, 1, samples, endpoint=False)
    frames = []
    for _ in range(n_machines):
        f1, f2 = rng.uniform(2, 9, 2)
        signature = np.sin(2 * np.pi * f1 * t) + 0.4 * np.sin(2 * np.pi * f2 * t + 1.0)
        gains = rng.uniform(-1, 1, channels)[:, None]
        noise = 1e-4 * rng.standard_normal((channels, samples))
        frames.append(1e-3 * gains * signature[None, :] * (1 + noise))
    return np.concatenate([f.ravel() for f in frames])


def main() -> None:
    data = sensor_dump()
    print(f"sensor dump: {data.nbytes / 1e6:.1f} MB, no block metadata attached\n")

    res = detect_block_spec(data, error_bound=EB)
    print(f"auto-detected structure: dims={res.spec.dims} "
          f"(period score {res.period_score:.3f}, confident={res.confident})")
    assert res.spec.sb_size == 48, "detector should find the 48-sample waveform"

    rows = []
    for name, codec in [
        ("pastri (auto)", PaSTRICompressor(dims=res.spec.dims)),
        ("sz", SZCompressor()),
        ("zfp", ZFPCompressor()),
    ]:
        blob = codec.compress(data, EB)
        out = codec.decompress(blob)
        err = np.max(np.abs(out - data))
        assert err <= EB
        rows.append([name, f"{data.nbytes / len(blob):.2f}", f"{err:.1e}"])
    print()
    print(render_table(["codec", "ratio", "max err"], rows))
    print("\nThe scaled-pattern structure carries over: PaSTRI wins on any")
    print("dataset whose chunks are scalar multiples of a repeating shape.")


if __name__ == "__main__":
    main()
