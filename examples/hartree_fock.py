#!/usr/bin/env python3
"""Hartree–Fock on compressed integrals — the paper's end application.

Runs restricted Hartree–Fock for H2 twice: with direct integrals and with
every ERI shell block stored through PaSTRI at a sweep of error bounds,
showing how the SCF energy degrades (or rather, doesn't) with the bound —
the reason a 1e-10 absolute bound is "based on user's requirement" in
quantum chemistry.

Run:  python examples/hartree_fock.py
"""

import numpy as np

from repro import CompressedERIStore, PaSTRICompressor
from repro.chem.basis import BasisSet, Shell
from repro.chem.molecule import Atom, Molecule
from repro.chem.scf import RHFSolver
from repro.harness.report import render_table

STO3G_H = ((3.42525091, 0.62391373, 0.16885540), (0.15432897, 0.53532814, 0.44463454))


def h2_basis(with_polarization: bool = True) -> BasisSet:
    mol = Molecule("h2", (Atom("H", (0, 0, 0)), Atom("H", (0, 0, 1.4))))
    shells = tuple(Shell(0, a.position, *STO3G_H) for a in mol.atoms)
    if with_polarization:
        shells += tuple(Shell(1, a.position, (1.1,), (1.0,)) for a in mol.atoms)
    return BasisSet(mol, shells)


def main() -> None:
    basis = h2_basis()
    print(f"H2, R = 1.4 bohr, {basis.n_basis_functions} basis functions (s + p shells)\n")

    direct = RHFSolver(basis).run()
    print(f"direct RHF energy: {direct.energy:.9f} hartree "
          f"({direct.iterations} iterations)")
    print("(STO-3G s-only reference: -1.1167; p shells lower it variationally)\n")

    rows = []
    for eb in (1e-4, 1e-6, 1e-8, 1e-10, 1e-12):
        store = CompressedERIStore(PaSTRICompressor(dims=(1, 1, 1, 1)), error_bound=eb)
        res = RHFSolver(basis, store=store).run()
        rows.append(
            [f"{eb:.0e}", f"{res.energy:.9f}", f"{abs(res.energy - direct.energy):.2e}",
             f"{store.stats.ratio:.1f}"]
        )
    print(render_table(["error bound", "RHF energy (hartree)", "|ΔE|", "store ratio"], rows))
    print("\nAt the paper's 1e-10 bound the energy error is below chemical")
    print("significance while the integral store shrinks several-fold.")

    # Post-HF: assemble MO integrals from stored ERIs (paper §I's use case).
    from repro.chem import mp2_energy

    store = CompressedERIStore(PaSTRICompressor(dims=(1, 1, 1, 1)), error_bound=1e-10)
    res = mp2_energy(RHFSolver(basis, store=store))
    print(f"\nMP2 on stored integrals: E_corr = {res.correlation_energy:.6f} hartree "
          f"(total {res.total_energy:.6f})")


if __name__ == "__main__":
    main()
