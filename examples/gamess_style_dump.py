#!/usr/bin/env python3
"""Compress a complete GAMESS-style integral dump, class by class.

A disk-based run dumps every shell quartet of the basis; quartets group
into block classes by shell letters, each with its own geometry — exactly
the per-configuration structure PaSTRI is built around (paper §III-B).
This example builds the full STO-3G dump for glutamine, compresses each
class with a geometry-matched codec, and prints the per-class table.

Run:  python examples/gamess_style_dump.py
"""

from repro.chem import class_dump, compress_class_dump, glutamine, sto3g_basis
from repro.harness.report import render_table

EB = 1e-10


def main() -> None:
    basis = sto3g_basis(glutamine())
    print(f"glutamine / STO-3G: {len(basis)} shells, "
          f"{basis.n_basis_functions} basis functions")
    dump = class_dump(basis, max_blocks_per_class=60, seed=0)
    total_blocks = sum(ds.n_blocks for ds in dump.values())
    print(f"sampled dump: {len(dump)} block classes, {total_blocks} blocks\n")

    res = compress_class_dump(dump, EB)
    rows = []
    for label, st in sorted(res.per_class.items(), key=lambda kv: -kv[1]["bytes"]):
        rows.append(
            [label, st["blocks"], f"{st['bytes'] / 1024:.1f}",
             f"{st['ratio']:.2f}", f"{st['max_error']:.1e}"]
        )
    print(render_table(["class", "blocks", "KiB", "ratio", "max err"], rows))
    print(f"\nwhole dump: {res.original_bytes / 1e6:.2f} MB -> "
          f"{res.compressed_bytes / 1e6:.2f} MB  "
          f"(ratio {res.ratio:.2f}, max error {res.max_abs_error:.1e} <= {EB:g})")


if __name__ == "__main__":
    main()
